"""Semantic AMonDet falsification and the blow-up constructions.

The model-theoretic side of the paper, made executable:

* `find_amondet_counterexample` searches for a *certified* witness that a
  query is **not** monotone answerable: an instance I1 satisfying Σ with
  Q(I1) true, an accessible part A of I1 (accessible parts are always
  access-valid, Prop 3.2), and I2 = chase(A, Σ) with Q(I2) false.  Then
  (I1, I2, A) violates AMonDet, so by Thm 3.1 no monotone plan answers Q.
  The search enumerates valid access selections exhaustively (capped);
  it is sound (a returned counterexample is checked) but of course not
  complete — the deciders are; this is the cross-validation oracle.
* `blow_up_instance` implements the cloning construction of Thm 6.3's
  proof: every domain element is duplicated into k copies and facts are
  closed under all copy combinations.  Equality-free constraints and CQ
  answers are invariant under this blow-up, which is what makes choice
  simplification sound — tests verify the invariance.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from ..accessibility.access import (
    AccessSelection,
    ExplicitSelection,
    valid_outputs,
)
from ..accessibility.accessible import accessible_part, is_access_valid
from ..chase.engine import ChaseOutcome, chase
from ..data.instance import Instance
from ..logic.atoms import Atom
from ..logic.evaluation import holds
from ..logic.queries import ConjunctiveQuery
from ..logic.terms import Constant, GroundTerm, Null
from ..schema.schema import Schema


@dataclass
class AMonDetCounterexample:
    """A verified violation of access monotonic-determinacy."""

    instance_1: Instance
    instance_2: Instance
    common_subinstance: Instance

    def verify(self, schema: Schema, query: ConjunctiveQuery) -> bool:
        """Re-check all the conditions of Prop 3.2."""
        seed = [Constant(c.value) for c in query.constants()]
        return (
            schema.satisfied_by(self.instance_1)
            and schema.satisfied_by(self.instance_2)
            and holds(query, self.instance_1)
            and not holds(query, self.instance_2)
            and self.common_subinstance.is_subinstance_of(self.instance_1)
            and self.common_subinstance.is_subinstance_of(self.instance_2)
            and is_access_valid(
                self.common_subinstance,
                self.instance_1,
                schema,
                seed_values=seed,
            )
        )


def _ground_nulls(instance: Instance) -> Instance:
    """Replace chase nulls by fresh constants (models must be ground)."""
    mapping: dict[GroundTerm, GroundTerm] = {}
    for term in instance.active_domain():
        if isinstance(term, Null):
            mapping[term] = Constant(f"@null:{term.label}")
    return instance.substitute(mapping)


def candidate_instances_for(
    schema: Schema,
    query: ConjunctiveQuery,
    *,
    max_rounds: int = 10,
    enlargements: int = 2,
    padding: int = 2,
) -> list[Instance]:
    """Ground models of Σ satisfying Q, grown from Q's canonical db.

    Chases CanonDB(Q) with Σ and grounds the nulls, then grows the model
    two ways so that result-bounded accesses have surplus matching
    tuples to hide behind:

    * **padding**: `padding` junk facts per relation (over fresh
      constants), chased to satisfy Σ — these give bounded accesses
      irrelevant tuples to return instead of the witnesses;
    * **enlargements**: unions of disjoint renamed copies of the model.
    """
    canonical, __ = query.canonical_instance()
    result = chase(
        canonical, schema.constraints, max_rounds=max_rounds,
        max_facts=10_000,
    )
    if result.outcome is ChaseOutcome.FAILED:
        return []
    base = _ground_nulls(result.instance)
    if not schema.satisfied_by(base):
        return []  # chase was truncated; skip unsound candidates

    variants = [base]
    if padding:
        padded = base.copy()
        for relation in schema.relations:
            for j in range(padding):
                padded.add(
                    Atom(
                        relation.name,
                        tuple(
                            Constant(f"@pad:{relation.name}:{j}:{p}")
                            for p in range(relation.arity)
                        ),
                    )
                )
        repaired = chase(
            padded, schema.constraints, max_rounds=max_rounds,
            max_facts=10_000,
        )
        if repaired.outcome is ChaseOutcome.FIXPOINT:
            grounded = _ground_nulls(repaired.instance)
            if schema.satisfied_by(grounded):
                variants.append(grounded)

    candidates = []
    for variant in variants:
        candidates.append(variant)
        current = variant
        for i in range(enlargements):
            renamed = current.substitute(
                {
                    term: Constant(f"@copy{i}:{term!r}")
                    for term in variant.active_domain()
                }
            )
            current = current.union(renamed)
            if schema.satisfied_by(current):
                candidates.append(current)
    candidates.sort(key=len)
    return candidates


def _enumerate_selections(
    instance: Instance,
    schema: Schema,
    seed_values: Sequence[GroundTerm],
    *,
    per_access_limit: int,
    total_limit: int,
) -> Iterable[AccessSelection]:
    """All (capped) valid access selections relevant to the fixpoint.

    Enumerates choices for the accesses reachable during the accessible-
    part computation; unreachable accesses fall back to an eager choice.
    """
    # Discover the accesses that can matter by running once eagerly.
    trace = accessible_part(
        instance, schema, seed_values=seed_values
    ).accesses
    choice_lists: list[list[tuple[tuple, frozenset[Atom]]]] = []
    for request in trace:
        options = list(
            valid_outputs(instance, request, limit=per_access_limit)
        )
        if len(options) > 1:
            key = (request.method.name, request.binding)
            choice_lists.append([(key, option) for option in options])
    if not choice_lists:
        yield ExplicitSelection({})
        return
    produced = 0
    for combination in itertools.product(*choice_lists):
        yield ExplicitSelection(dict(combination))
        produced += 1
        if produced >= total_limit:
            return


def find_amondet_counterexample(
    schema: Schema,
    query: ConjunctiveQuery,
    *,
    instances: Optional[Iterable[Instance]] = None,
    max_chase_rounds: int = 30,
    per_access_limit: int = 8,
    total_limit: int = 512,
) -> Optional[AMonDetCounterexample]:
    """Search for a verified AMonDet counterexample (sound, not complete).

    `instances` defaults to `candidate_instances_for`.  For each
    candidate I1 and each enumerated access selection σ, the accessible
    part A is access-valid in I1; if Q is not certain over chase(A, Σ)
    (with a terminating chase), the triple refutes AMonDet.
    """
    if query.free_variables:
        raise ValueError("the falsifier works on Boolean CQs")
    seed = [Constant(c.value) for c in query.constants()]
    if instances is None:
        instances = candidate_instances_for(schema, query)
    for instance_1 in instances:
        if not schema.satisfied_by(instance_1):
            continue
        if not holds(query, instance_1):
            continue
        for selection in _enumerate_selections(
            instance_1,
            schema,
            seed,
            per_access_limit=per_access_limit,
            total_limit=total_limit,
        ):
            part = accessible_part(
                instance_1, schema, selection, seed_values=seed
            ).part
            result = chase(
                part,
                schema.constraints,
                max_rounds=max_chase_rounds,
                max_facts=20_000,
            )
            if result.outcome is not ChaseOutcome.FIXPOINT:
                continue  # cannot certify I2 satisfies Σ
            if holds(query, result.instance):
                continue
            instance_2 = _ground_nulls(result.instance)
            part_grounded = part  # part is ⊆ I1 and ⊆ I2 by construction
            candidate = AMonDetCounterexample(
                instance_1, instance_2, part_grounded
            )
            if candidate.verify(schema, query):
                return candidate
    return None


def blow_up_instance(instance: Instance, copies: int) -> Instance:
    """The cloning blow-up of Thm 6.3's proof.

    Every domain element a gets `copies` clones a^0..a^{copies-1}
    (a^0 = a); the result holds every fact of the original instantiated
    with all combinations of clones.  Equality-free FO constraints and
    Boolean CQs are invariant under this operation.
    """
    if copies < 1:
        raise ValueError("copies must be >= 1")

    def clone(term: GroundTerm, index: int) -> GroundTerm:
        if index == 0:
            return term
        if isinstance(term, Constant):
            return Constant(("@clone", term.value, index))
        return Null(f"clone:{term.label}:{index}")

    result = Instance()
    for fact in instance:
        for combination in itertools.product(
            range(copies), repeat=len(fact.terms)
        ):
            result.add(
                Atom(
                    fact.relation,
                    tuple(
                        clone(term, index)
                        for term, index in zip(fact.terms, combination)
                    ),
                )
            )
    return result
