"""The universal dynamic plan: saturate accesses, return certain answers.

For any CQ Q that is AMonDet w.r.t. a schema, the following *dynamic*
plan answers Q on every instance I and every valid access selection σ
(see DESIGN.md §2 for the two-line proof from Prop 3.2):

1. compute the accessible part ``A = AccPart(σ, I)``, seeding the query's
   constants;
2. return the certain answers of Q over A under the schema constraints
   (Boolean: "does Q hold in every model of Σ containing A?", decided by
   chasing A).

Soundness holds for every CQ (the output is always ⊆ Q(I)); completeness
holds exactly when Q is AMonDet — so the universal plan coupled with a
YES decision from the deciders is a correct executable implementation of
the query over the restricted interfaces.

The number of access rounds is data-dependent (a fixpoint), which is why
this is a *dynamic* plan rather than a fixed command sequence in the
paper's plan language; `repro.answerability.plangen` additionally
extracts fixed static plans from chase proofs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from ..accessibility.access import AccessSelection, EagerSelection
from ..accessibility.accessible import accessible_part
from ..chase.engine import ChaseOutcome, chase
from ..data.instance import Instance
from ..logic.evaluation import evaluate_cq
from ..logic.queries import ConjunctiveQuery
from ..logic.terms import Constant, GroundTerm
from ..schema.schema import Schema

AnswerTuple = tuple[GroundTerm, ...]


@dataclass
class UniversalPlanRun:
    """Diagnostics of one universal-plan execution."""

    answers: FrozenSet[AnswerTuple]
    accessed_facts: int
    access_rounds: int
    chase_rounds: int
    definitive: bool


class UniversalPlan:
    """The saturate-then-certain-answers plan for a query and schema."""

    def __init__(
        self,
        schema: Schema,
        query: ConjunctiveQuery,
        *,
        max_chase_rounds: Optional[int] = 200,
        max_chase_facts: int = 200_000,
    ) -> None:
        self.schema = schema
        self.query = query
        self.max_chase_rounds = max_chase_rounds
        self.max_chase_facts = max_chase_facts

    def run(
        self,
        instance: Instance,
        selection: Optional[AccessSelection] = None,
    ) -> UniversalPlanRun:
        """Execute against an instance under an access selection."""
        selection = selection or EagerSelection()
        seed = [Constant(c.value) for c in self.query.constants()]
        part = accessible_part(
            instance, self.schema, selection, seed_values=seed
        )
        result = chase(
            part.part,
            self.schema.constraints,
            max_rounds=self.max_chase_rounds,
            max_facts=self.max_chase_facts,
        )
        definitive = result.outcome in (
            ChaseOutcome.FIXPOINT,
            ChaseOutcome.FAILED,
        )
        if result.outcome is ChaseOutcome.FAILED:
            # Accessed data contradicts the constraints: on constraint-
            # satisfying instances this cannot happen; return soundly.
            answers: FrozenSet[AnswerTuple] = frozenset()
        else:
            # Certain answers: matches whose answer tuple avoids chase
            # nulls (null-free answers are certain by universality).
            answers = frozenset(
                answer
                for answer in evaluate_cq(self.query, result.instance)
                if all(isinstance(t, Constant) for t in answer)
            )
        return UniversalPlanRun(
            answers=answers,
            accessed_facts=len(part.part),
            access_rounds=part.rounds,
            chase_rounds=result.rounds,
            definitive=definitive,
        )

    def answers(
        self,
        instance: Instance,
        selection: Optional[AccessSelection] = None,
    ) -> FrozenSet[AnswerTuple]:
        """The plan's output table (Boolean queries: {()} or {})."""
        return self.run(instance, selection).answers

    def holds(
        self,
        instance: Instance,
        selection: Optional[AccessSelection] = None,
    ) -> bool:
        """Boolean-query convenience wrapper."""
        return bool(self.run(instance, selection).answers)
