"""Schema simplifications (paper §4 and §6).

Three transformations remove or tame result bounds:

* **existence-check simplification** (`existence_check_simplification`,
  Thm 4.2 — complete for ID constraints): each result-bounded method
  ``mt`` on R becomes a Boolean method on a new view relation ``Rmt``
  holding the input projection of R, axiomatized by
  ``Rmt(x̄) ↔ ∃ȳ R(x̄,ȳ)``;
* **FD simplification** (`fd_simplification`, Thm 4.5 — complete for FD
  constraints): the view keeps the whole functionally determined part
  ``DetBy(mt)`` of the output, so the method deterministically returns
  the projection the FDs pin down;
* **choice simplification** (`choice_simplification`, Thm 6.3/6.4 —
  complete for equality-free FO and for UIDs+FDs): every result bound is
  replaced by 1.

Each transformation returns a `SimplificationResult` carrying the new
schema plus bookkeeping used by the deciders and by plan translation
(which view method replaces which original method).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..constraints.fd import FunctionalDependency, det_by
from ..constraints.tgd import TGD
from ..logic.atoms import Atom
from ..logic.terms import Variable
from ..schema.access import AccessMethod
from ..schema.relation import Relation
from ..schema.schema import Schema
from .naming import existence_check_relation, fd_view_relation


@dataclass
class MethodRewrite:
    """How one result-bounded method was simplified."""

    original: AccessMethod
    replacement: AccessMethod
    view_relation: Optional[Relation]
    #: Positions of the base relation exposed by the view, in view order
    #: (None for choice simplification, which keeps the relation).
    view_positions: Optional[tuple[int, ...]] = None


@dataclass
class SimplificationResult:
    """A simplified schema plus the method bookkeeping."""

    schema: Schema
    kind: str
    rewrites: dict[str, MethodRewrite] = field(default_factory=dict)

    def view_relations(self) -> tuple[str, ...]:
        return tuple(
            r.view_relation.name
            for r in self.rewrites.values()
            if r.view_relation is not None
        )


def _view_axioms(
    base: Relation, view_name: str, positions: tuple[int, ...]
) -> tuple[TGD, TGD]:
    """The two IDs ``R(x̄,ȳ) → V(x̄)`` and ``V(x̄) → ∃ȳ R(x̄,ȳ)``."""
    base_terms = tuple(Variable(f"x{i}") for i in range(base.arity))
    view_terms = tuple(base_terms[p] for p in positions)
    to_view = TGD(
        (Atom(base.name, base_terms),),
        (Atom(view_name, view_terms),),
        f"{view_name}_fwd",
    )
    fresh = tuple(
        base_terms[i] if i in positions else Variable(f"y{i}")
        for i in range(base.arity)
    )
    from_view = TGD(
        (Atom(view_name, view_terms),),
        (Atom(base.name, fresh),),
        f"{view_name}_bwd",
    )
    return to_view, from_view


def existence_check_simplification(schema: Schema) -> SimplificationResult:
    """Replace every result-bounded method by a Boolean existence check.

    Complete for schemas whose constraints are IDs (Theorem 4.2): a CQ is
    monotone answerable in the original schema iff it is in the result.
    """
    result_schema = Schema(schema.relations, schema.constraints, ())
    rewrites: dict[str, MethodRewrite] = {}
    for method in schema.methods:
        if method.effective_bound() is None:
            result_schema.add(method)
            continue
        positions = method.sorted_input_positions
        view_name = existence_check_relation(
            method.relation.name, method.name
        )
        view = Relation(view_name, len(positions))
        result_schema.add(view)
        forward, backward = _view_axioms(method.relation, view_name, positions)
        result_schema.add_constraint(forward)
        result_schema.add_constraint(backward)
        replacement = AccessMethod(
            f"{method.name}__chk",
            view,
            frozenset(range(view.arity)),  # Boolean: all inputs
        )
        result_schema.add(replacement)
        rewrites[method.name] = MethodRewrite(
            method, replacement, view, positions
        )
    return SimplificationResult(result_schema, "existence-check", rewrites)


def fd_simplification(schema: Schema) -> SimplificationResult:
    """Replace result-bounded methods by views over DetBy(mt).

    Complete for schemas whose constraints are FDs (Theorem 4.5).  When
    the constraints imply no FDs this coincides with the existence-check
    simplification.
    """
    fds = [
        c for c in schema.constraints if isinstance(c, FunctionalDependency)
    ]
    result_schema = Schema(schema.relations, schema.constraints, ())
    rewrites: dict[str, MethodRewrite] = {}
    for method in schema.methods:
        if method.effective_bound() is None:
            result_schema.add(method)
            continue
        relation = method.relation
        determined = det_by(fds, relation.name, method.input_positions)
        positions = tuple(sorted(determined))
        view_name = fd_view_relation(relation.name, method.name)
        view = Relation(view_name, len(positions))
        result_schema.add(view)
        forward, backward = _view_axioms(relation, view_name, positions)
        result_schema.add_constraint(forward)
        result_schema.add_constraint(backward)
        view_inputs = frozenset(
            i
            for i, p in enumerate(positions)
            if p in method.input_positions
        )
        replacement = AccessMethod(f"{method.name}__det", view, view_inputs)
        result_schema.add(replacement)
        rewrites[method.name] = MethodRewrite(
            method, replacement, view, positions
        )
    return SimplificationResult(result_schema, "fd", rewrites)


def choice_simplification(schema: Schema) -> SimplificationResult:
    """Set every result bound to 1 (Theorems 6.3 / 6.4).

    Complete for equality-free first-order constraints (hence all TGDs)
    and for UIDs + FDs; *not* complete for arbitrary FO constraints
    (Example 8.1).
    """
    methods = []
    rewrites: dict[str, MethodRewrite] = {}
    for method in schema.methods:
        if method.result_bound is not None:
            replacement = method.with_result_bound(1)
        elif method.result_lower_bound is not None:
            replacement = method.with_lower_bound(1)
        else:
            methods.append(method)
            continue
        methods.append(replacement)
        rewrites[method.name] = MethodRewrite(method, replacement, None)
    return SimplificationResult(
        schema.replace_methods(methods), "choice", rewrites
    )
