"""Monotone answerability: reductions, simplifications, deciders, plans."""

from .axioms import (
    AMonDetContainment,
    AxiomError,
    amondet_constraints,
    amondet_start_instance,
    build_amondet_containment,
    prime_constraint,
    prime_query,
)
from .counterexamples import (
    AMonDetCounterexample,
    blow_up_instance,
    candidate_instances_for,
    find_amondet_counterexample,
)
from .deciders import (
    AnswerabilityResult,
    decide_monotone_answerability,
    decide_with_choice_simplification,
    decide_with_fds,
    decide_with_ids,
    decide_with_uids_and_fds,
    freeze_free_variables,
    minimize_query_under_fds,
)
from .elimub import elim_ub
from .finite import (
    decide_finite_monotone_answerability,
    schema_with_finite_closure,
)
from .linearization import (
    LinearizedSystem,
    linearize,
    saturate_truncated_axioms,
)
from .naming import ACCESSIBLE, accessed, is_primed, primed, unprimed
from .plangen import (
    ExtractedProof,
    PlanExtractionError,
    extract_proof,
    generate_static_plan,
    saturation_plan,
)
from .simplification import (
    MethodRewrite,
    SimplificationResult,
    choice_simplification,
    existence_check_simplification,
    fd_simplification,
)
from .universal_plan import UniversalPlan, UniversalPlanRun

__all__ = [
    "AMonDetContainment", "AxiomError", "amondet_constraints",
    "amondet_start_instance", "build_amondet_containment",
    "prime_constraint", "prime_query",
    "AMonDetCounterexample", "blow_up_instance", "candidate_instances_for",
    "find_amondet_counterexample",
    "AnswerabilityResult", "decide_monotone_answerability",
    "decide_with_choice_simplification", "decide_with_fds",
    "decide_with_ids", "decide_with_uids_and_fds", "freeze_free_variables",
    "minimize_query_under_fds",
    "elim_ub",
    "decide_finite_monotone_answerability", "schema_with_finite_closure",
    "LinearizedSystem", "linearize", "saturate_truncated_axioms",
    "ACCESSIBLE", "accessed", "is_primed", "primed", "unprimed",
    "ExtractedProof", "PlanExtractionError", "extract_proof",
    "generate_static_plan", "saturation_plan",
    "MethodRewrite", "SimplificationResult", "choice_simplification",
    "existence_check_simplification", "fd_simplification",
    "UniversalPlan", "UniversalPlanRun",
]
