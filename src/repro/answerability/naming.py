"""Naming conventions for the auxiliary relations of the reduction.

The reduction to query containment (paper §3) triples the signature:
``R`` (the instance I1), ``R'`` (the instance I2), and ``RAccessed`` (the
common access-valid subinstance), plus the unary ``accessible`` predicate.
The schema simplifications (§4) add view relations per result-bounded
method.  All generated names funnel through this module so they can never
collide with user relations (user relation names containing ``__`` are
rejected by the builders that use these).
"""

from __future__ import annotations

ACCESSIBLE = "__accessible"
PRIME_SUFFIX = "__prime"
ACCESSED_SUFFIX = "__accessed"


def primed(relation: str) -> str:
    """The name of the I2-copy of a relation."""
    return relation + PRIME_SUFFIX


def unprimed(relation: str) -> str:
    if not relation.endswith(PRIME_SUFFIX):
        raise ValueError(f"{relation} is not a primed relation name")
    return relation[: -len(PRIME_SUFFIX)]


def is_primed(relation: str) -> bool:
    return relation.endswith(PRIME_SUFFIX)


def accessed(relation: str) -> str:
    """The name of the IAccessed-copy of a relation."""
    return relation + ACCESSED_SUFFIX


def existence_check_relation(relation: str, method: str) -> str:
    """View relation of the existence-check simplification (§4)."""
    return f"{relation}__chk_{method}"


def fd_view_relation(relation: str, method: str) -> str:
    """View relation of the FD simplification (§4)."""
    return f"{relation}__det_{method}"


def check_user_relation_name(name: str) -> None:
    """Reject user relation names that could collide with generated ones."""
    if "__" in name:
        raise ValueError(
            f"relation name {name!r} is reserved (contains '__'); rename "
            "the relation"
        )
