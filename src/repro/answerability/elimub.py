"""Elimination of result upper bounds (Proposition 3.3).

A result bound of k asserts an upper bound (at most k tuples) and a lower
bound (all tuples when ≤ k match).  Prop 3.3 shows the upper bound is
irrelevant to monotone answerability: replacing every result bound by the
corresponding result *lower* bound preserves the set of monotone
answerable CQs.  `elim_ub` performs that schema transformation.
"""

from __future__ import annotations

from ..schema.schema import Schema


def elim_ub(schema: Schema) -> Schema:
    """The schema ElimUB(Sch): result bounds become result lower bounds."""
    methods = []
    for method in schema.methods:
        if method.result_bound is not None:
            methods.append(method.with_lower_bound(method.result_bound))
        else:
            methods.append(method)
    return schema.replace_methods(methods)
