"""The AMonDet containment (Proposition 3.4).

Monotone answerability of a CQ Q w.r.t. a schema equals the query
containment ``Q ⊆Γ Q'`` where Γ consists of the schema constraints Σ,
their primed copy Σ', and *accessibility axioms* describing the common
access-valid subinstance.  This module builds that containment problem.

Two encodings are provided:

* the **explicit** encoding with ``RAccessed`` relations, following the
  statement of Prop 3.4 verbatim;
* the **inlined** encoding used by the complexity proofs (§5, §7), where
  ``RAccessed`` is eliminated:

  - exact method:  ``acc(x̄) ∧ R(x̄,ȳ) → R'(x̄,ȳ) ∧ ⋀ acc(y)``
  - bounded method (bound 1 after choice simplification, or a result
    lower bound used as an existence check):
    ``acc(x̄) ∧ R(x̄,ȳ) → ∃z̄ (R(x̄,z̄) ∧ R'(x̄,z̄) ∧ ⋀ acc(z))``

Result bounds k > 1 produce the cardinality axioms of Example 3.5, which
no chase handles; per the paper, callers must first apply a schema
simplification (§4, §6).  `build_amondet_containment` therefore accepts
only schemas whose bounded methods have bound 1 (or whose bounds the
caller explicitly asks to be treated as existence checks via
``treat_bounds_as_one=True`` — sound after the corresponding
simplifiability theorem has been applied).

Constants of Q are made accessible at the start (plans may use query
constants as bindings, as in Example 1.5's access with id 12345).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..constraints.egd import EGD
from ..constraints.fd import FunctionalDependency
from ..constraints.tgd import TGD
from ..data.instance import Instance
from ..logic.atoms import Atom
from ..logic.queries import ConjunctiveQuery
from ..logic.terms import Variable
from ..schema.access import AccessMethod
from ..schema.schema import Schema
from .naming import ACCESSIBLE, accessed, primed

Dependency = Union[TGD, EGD, FunctionalDependency]


class AxiomError(ValueError):
    """Raised when the schema still carries unsimplified bounds > 1."""


@dataclass
class AMonDetContainment:
    """The containment problem Q ⊆Γ Q' encoding AMonDet.

    Attributes
    ----------
    query:
        The original (Boolean) CQ Q.
    target:
        Q' — Q over the primed relations.
    constraints:
        Γ: Σ ∪ Σ' ∪ accessibility axioms.
    start_instance:
        CanonDB(Q) extended with ``accessible(c)`` for every constant of
        Q (the chase starts here).
    """

    query: ConjunctiveQuery
    target: ConjunctiveQuery
    constraints: list[Dependency]
    start_instance: Instance


def prime_constraint(constraint: Dependency) -> Dependency:
    """The Σ'-copy of a dependency (relations renamed to primed)."""
    if isinstance(constraint, TGD):
        return constraint.rename_relations(primed)
    if isinstance(constraint, FunctionalDependency):
        return constraint.rename_relation(primed(constraint.relation))
    if isinstance(constraint, EGD):
        return EGD(
            tuple(a.rename_relation(primed) for a in constraint.body),
            constraint.left,
            constraint.right,
            constraint.name,
        )
    raise TypeError(f"unsupported constraint {constraint!r}")


def prime_query(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Q' — the query over the primed relations."""
    return query.rename_relations(primed)


def _method_variables(method: AccessMethod) -> tuple[list, list[Atom]]:
    """Fresh variables x1..xn for the method's relation, plus the
    accessibility premises for its input positions."""
    arity = method.relation.arity
    terms = [Variable(f"x{i}") for i in range(arity)]
    premises = [
        Atom(ACCESSIBLE, (terms[i],))
        for i in sorted(method.input_positions)
    ]
    return terms, premises


def exact_method_axioms(
    method: AccessMethod, *, inline: bool
) -> list[TGD]:
    """Axioms for a method without result bounds."""
    relation = method.relation.name
    terms, premises = _method_variables(method)
    body = tuple(premises) + (Atom(relation, tuple(terms)),)
    if inline:
        head = [Atom(primed(relation), tuple(terms))]
        head.extend(
            Atom(ACCESSIBLE, (terms[i],)) for i in method.output_positions
        )
        return [TGD(body, tuple(head), f"access_{method.name}")]
    return [
        TGD(
            body,
            (Atom(accessed(relation), tuple(terms)),),
            f"access_{method.name}",
        )
    ]


def bounded_method_axioms(
    method: AccessMethod, *, inline: bool
) -> list[TGD]:
    """Axioms for a method with (lower) bound 1 — the choice axioms.

    ``acc(x̄) ∧ R(x̄,ȳ) → ∃z̄ (R(x̄,z̄) ∧ R'(x̄,z̄) ∧ ⋀ acc(z))`` in the
    inlined form; with RAccessed in the explicit form.
    """
    relation = method.relation.name
    terms, premises = _method_variables(method)
    body = tuple(premises) + (Atom(relation, tuple(terms)),)
    head_terms = [
        terms[i] if i in method.input_positions else Variable(f"z{i}")
        for i in range(method.relation.arity)
    ]
    if inline:
        head = [
            Atom(relation, tuple(head_terms)),
            Atom(primed(relation), tuple(head_terms)),
        ]
        head.extend(
            Atom(ACCESSIBLE, (head_terms[i],))
            for i in method.output_positions
        )
        return [TGD(body, tuple(head), f"choice_{method.name}")]
    return [
        TGD(
            body,
            (Atom(accessed(relation), tuple(head_terms)),),
            f"choice_{method.name}",
        )
    ]


def accessed_transfer_axioms(schema: Schema) -> list[TGD]:
    """``RAccessed(w̄) → R(w̄) ∧ R'(w̄) ∧ ⋀ acc(w)`` (explicit encoding)."""
    axioms = []
    for relation in schema.relations:
        terms = tuple(Variable(f"w{i}") for i in range(relation.arity))
        head = [
            Atom(relation.name, terms),
            Atom(primed(relation.name), terms),
        ]
        head.extend(Atom(ACCESSIBLE, (t,)) for t in terms)
        axioms.append(
            TGD(
                (Atom(accessed(relation.name), terms),),
                tuple(head),
                f"subinstance_{relation.name}",
            )
        )
    return axioms


def amondet_constraints(
    schema: Schema,
    *,
    inline: bool = True,
    treat_bounds_as_one: bool = False,
) -> list[Dependency]:
    """Γ: the schema-only part of the AMonDet containment.

    This is the expensive, query-independent half of Prop 3.4 — Σ, Σ',
    and the accessibility axioms.  `CompiledSchema` caches it so a
    session pays for it once per schema rather than once per query.

    Raises `AxiomError` when a method carries a bound k > 1 and
    ``treat_bounds_as_one`` is False: such schemas need a §4/§6 schema
    simplification first (that is the paper's whole point — the naïve
    encoding needs the cardinality axioms of Example 3.5).
    """
    constraints: list[Dependency] = list(schema.constraints)
    constraints.extend(prime_constraint(c) for c in schema.constraints)
    for method in schema.methods:
        bound = method.effective_bound()
        if bound is None:
            constraints.extend(exact_method_axioms(method, inline=inline))
        else:
            if bound > 1 and not treat_bounds_as_one:
                raise AxiomError(
                    f"method {method.name} has bound {bound} > 1: apply a "
                    "schema simplification (existence-check / FD / choice) "
                    "before building the containment, or pass "
                    "treat_bounds_as_one=True if a simplifiability theorem "
                    "justifies it"
                )
            constraints.extend(bounded_method_axioms(method, inline=inline))
    if not inline:
        constraints.extend(accessed_transfer_axioms(schema))
    return constraints


def amondet_start_instance(query: ConjunctiveQuery) -> Instance:
    """CanonDB(Q) with every query constant made accessible."""
    start, __ = query.canonical_instance()
    for constant in query.constants():
        start.add(Atom(ACCESSIBLE, (constant,)))
    return start


def build_amondet_containment(
    schema: Schema,
    query: ConjunctiveQuery,
    *,
    inline: bool = True,
    treat_bounds_as_one: bool = False,
) -> AMonDetContainment:
    """Build the AMonDet containment for a (Boolean) CQ and a schema.

    The constraint set is query-independent; callers deciding many
    queries against one schema should cache `amondet_constraints` (as
    `repro.service.CompiledSchema` does) and pair it with
    `amondet_start_instance` per query.
    """
    if query.free_variables:
        raise AxiomError(
            "the reduction is stated for Boolean CQs; bind the free "
            "variables first (the paper's results extend routinely)"
        )
    return AMonDetContainment(
        query=query,
        target=prime_query(query),
        constraints=amondet_constraints(
            schema,
            inline=inline,
            treat_bounds_as_one=treat_bounds_as_one,
        ),
        start_instance=amondet_start_instance(query),
    )
