"""Extracting static plans (in the paper's plan language) from proofs.

The deciders prove answerability by exhibiting a chase proof of the
AMonDet containment.  This module compiles such a proof into a concrete
monotone plan, in the spirit of the proof-to-plan extraction of
Benedikt et al. ("Generating plans from proofs") that the paper builds
on:

1. **Provenance closure**: starting from the match of Q' in the final
   chase instance, walk back through the recorded steps to the set of
   *transfer* firings (our ``access_*`` / ``choice_*`` / ``sep_choice_*``
   axioms) that injected primed facts.  Their unprimed patterns form the
   **final CQ** C: a conjunction of "this tuple was retrieved" atoms with
   C ⊨_Σ Q (soundness) and C guaranteed retrievable whenever Q(I) holds
   (completeness, from the proof).
2. **Saturation prefix**: the proof's depth d bounds how many rounds of
   exhaustive accesses are needed to make C's tuples visible.  The plan
   performs d rounds; round r accesses every method with every binding
   over the values collected so far (query constants seed round 0).
3. **Final middleware command**: evaluate C over the per-relation unions
   of access outputs and project to the Boolean answer.

The extraction works for Boolean queries on schemas whose methods the
proof's axioms mention directly — which is the case for the
choice-simplification routes (same method names as the original schema;
a plan valid under bound 1 remains valid under bound k, since every
lower-bound-k output is a lower-bound-1 output and Prop 3.3 bridges to
result bounds) and for the FD route (view accesses translate to
original-method accesses that project onto the DetBy positions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..chase.engine import ChaseResult, MergeStep, TGDStep
from ..logic.atoms import Atom
from ..logic.homomorphism import find_homomorphism
from ..logic.queries import ConjunctiveQuery
from ..logic.terms import Constant, GroundTerm, Variable
from ..plans.algebra import (
    ConstantRow,
    Expression,
    Join,
    Product,
    Projection,
    Selection,
    TableRef,
    Union,
    Unit,
)
from ..plans.plan import AccessCommand, Plan, QueryCommand
from ..schema.schema import Schema
from .naming import is_primed, unprimed
from .simplification import SimplificationResult

#: Axiom-name prefixes that correspond to performing an access.
_TRANSFER_PREFIXES = ("access_", "choice_", "sep_choice_")


class PlanExtractionError(ValueError):
    """Raised when no static plan can be extracted from the certificate."""


@dataclass
class ExtractedProof:
    """The distilled content of a chase certificate."""

    final_cq: ConjunctiveQuery  # over unprimed base/view relations
    rounds: int


def _producers_with_merges(
    result: ChaseResult,
) -> dict[Atom, tuple[TGDStep, tuple[Atom, ...]]]:
    """Map each derived fact to its producing step and body facts,
    applying EGD merges as they happen so keys match the final instance."""
    producers: dict[Atom, tuple[TGDStep, tuple[Atom, ...]]] = {}

    def rewrite(mapping, fact: Atom) -> Atom:
        return Atom(
            fact.relation,
            tuple(mapping.get(t, t) for t in fact.terms),
        )

    for step in result.steps:
        if isinstance(step, MergeStep):
            mapping = {step.removed: step.kept}
            producers = {
                rewrite(mapping, fact): (
                    produced_step,
                    tuple(rewrite(mapping, b) for b in body),
                )
                for fact, (produced_step, body) in producers.items()
            }
            continue
        assert isinstance(step, TGDStep)
        body_facts = tuple(
            atom.substitute(step.trigger)  # type: ignore[arg-type]
            for atom in step.dependency.body
        )
        for fact in step.produced:
            producers.setdefault(fact, (step, body_facts))
    return producers


def extract_proof(
    result: ChaseResult,
    target: ConjunctiveQuery,
    query_name: str = "C",
) -> ExtractedProof:
    """Distill a YES chase certificate into the final CQ and depth."""
    match = find_homomorphism(target.atoms, result.instance)
    if match is None:
        raise PlanExtractionError(
            "certificate's final instance does not match the target query"
        )
    producers = _producers_with_merges(result)

    needed: list[Atom] = [a.substitute(match) for a in target.atoms]
    seen: set[Atom] = set()
    transfer_facts: list[tuple[Atom, int]] = []
    rounds = 0
    while needed:
        fact = needed.pop()
        if fact in seen:
            continue
        seen.add(fact)
        entry = producers.get(fact)
        if entry is None:
            continue  # start-instance fact: nothing to replay
        step, body_facts = entry
        rounds = max(rounds, step.round_index)
        if any(
            step.dependency.name.startswith(prefix)
            for prefix in _TRANSFER_PREFIXES
        ):
            if is_primed(fact.relation):
                transfer_facts.append((fact, step.round_index))
        needed.extend(body_facts)

    if not transfer_facts:
        raise PlanExtractionError(
            "no access firings in the provenance closure (degenerate proof)"
        )

    # Build the final CQ over unprimed relations; chase terms become
    # variables (constants stay constants).
    variable_of: dict[GroundTerm, Variable] = {}

    def as_term(term: GroundTerm):
        if isinstance(term, Constant):
            return term
        if term not in variable_of:
            variable_of[term] = Variable(f"v{len(variable_of)}")
        return variable_of[term]

    atoms = tuple(
        Atom(unprimed(fact.relation), tuple(as_term(t) for t in fact.terms))
        for fact, __ in dict.fromkeys(transfer_facts)
    )
    final_cq = ConjunctiveQuery(atoms, (), query_name)
    return ExtractedProof(final_cq, max(rounds, 1))


# ----------------------------------------------------------------------
# Saturation plan construction
# ----------------------------------------------------------------------
def _cq_over_tables(
    query: ConjunctiveQuery,
    table_of_relation: dict[str, tuple[str, int]],
) -> Expression:
    """Compile a Boolean CQ into an RA expression over the union tables."""
    expression: Optional[Expression] = None
    columns_of: dict[Variable, int] = {}
    offset = 0
    for atom in query.atoms:
        if atom.relation not in table_of_relation:
            raise PlanExtractionError(
                f"final CQ mentions relation {atom.relation} with no "
                "accessed table"
            )
        table, arity = table_of_relation[atom.relation]
        ref: Expression = TableRef(table, arity)
        conditions = []
        local_first: dict[Variable, int] = {}
        for i, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                conditions.append((i, term))
            elif isinstance(term, Variable):
                if term in local_first:
                    conditions.append((i, local_first[term]))
                else:
                    local_first[term] = i
        if conditions:
            ref = Selection(ref, tuple(conditions))
        if expression is None:
            expression = ref
        else:
            join_on = tuple(
                (columns_of[var], position)
                for var, position in local_first.items()
                if var in columns_of
            )
            if join_on:
                expression = Join(expression, ref, join_on)
            else:
                expression = Product(expression, ref)
        for var, position in local_first.items():
            if var not in columns_of:
                columns_of[var] = offset + position
        offset += arity
    assert expression is not None
    return Projection(expression, ())


def saturation_plan(
    schema: Schema,
    query: ConjunctiveQuery,
    proof: ExtractedProof,
    *,
    simplification: Optional[SimplificationResult] = None,
    name: str = "PL",
) -> Plan:
    """Build the static saturation plan for an extracted proof.

    ``simplification`` translates view-method accesses of an FD/existence
    simplification back to original methods projected onto the view
    positions; the final CQ's view relations then read those tables.
    """
    commands: list = []
    value_parts: list[Expression] = [
        ConstantRow((Constant(c.value),)) for c in query.constants()
    ]
    #: relation name -> list of (table name, arity) accessed so far
    tables_by_relation: dict[str, list[tuple[str, int]]] = {}

    # Translate methods: which access commands to run each round.
    accesses: list[tuple[str, int, tuple[int, ...], str, int]] = []
    # (method name, #inputs, output positions, logical relation, arity)
    view_of_replacement = {}
    if simplification is not None:
        for rewrite in simplification.rewrites.values():
            view_of_replacement[rewrite.replacement.name] = rewrite
        working = simplification.schema
    else:
        working = schema
    for method in working.methods:
        rewrite = view_of_replacement.get(method.name)
        if rewrite is None:
            accesses.append(
                (
                    method.name,
                    len(method.input_positions),
                    tuple(range(method.relation.arity)),
                    method.relation.name,
                    method.relation.arity,
                )
            )
        else:
            original = rewrite.original
            positions = rewrite.view_positions or ()
            accesses.append(
                (
                    original.name,
                    len(original.input_positions),
                    tuple(positions),
                    rewrite.view_relation.name,
                    len(positions),
                )
            )

    for round_index in range(1, proof.rounds + 1):
        values_table = f"V{round_index - 1}"
        # Snapshot the values known at the START of the round; outputs of
        # this round's accesses only feed later rounds.
        round_values = tuple(value_parts)
        if round_values:
            expression = (
                round_values[0]
                if len(round_values) == 1
                else Union(round_values)
            )
            commands.append(QueryCommand(values_table, expression))
        for (
            method_name,
            input_count,
            outputs,
            logical_relation,
            arity,
        ) in accesses:
            if input_count == 0:
                binding: Expression = Unit()
            elif not round_values:
                continue  # no values to bind yet: skip this access
            else:
                binding = TableRef(values_table, 1)
                for __ in range(input_count - 1):
                    binding = Product(binding, TableRef(values_table, 1))
            target = f"A_{method_name}_{round_index}"
            commands.append(
                AccessCommand(
                    target,
                    method_name,
                    binding,
                    output_positions=outputs or None,
                )
            )
            tables_by_relation.setdefault(logical_relation, []).append(
                (target, arity)
            )
            for column in range(arity):
                value_parts.append(
                    Projection(TableRef(target, arity), (column,))
                )

    # Per-relation unions feeding the final CQ.
    table_of_relation: dict[str, tuple[str, int]] = {}
    for relation, tables in tables_by_relation.items():
        arity = tables[0][1]
        union_name = f"U_{relation}"
        commands.append(
            QueryCommand(
                union_name,
                Union(tuple(TableRef(t, a) for t, a in tables))
                if len(tables) > 1
                else TableRef(tables[0][0], tables[0][1]),
            )
        )
        table_of_relation[relation] = (union_name, arity)

    final = _cq_over_tables(proof.final_cq, table_of_relation)
    commands.append(QueryCommand("T_out", final))
    return Plan(tuple(commands), "T_out", name=name)


def generate_static_plan(
    schema,
    query: ConjunctiveQuery,
    *,
    max_rounds: Optional[int] = 25,
    max_facts: Optional[int] = None,
    max_disjuncts: Optional[int] = None,
    subsumption: bool = True,
    budget=None,
) -> Optional[Plan]:
    """Decide answerability via a proof-producing route and compile the
    proof to a static plan; None when the query is not (provably)
    answerable through a chase certificate.

    Accepts a `Schema` or a `repro.service.CompiledSchema` (the cached
    simplification and AMonDet axioms are reused).  Uses the
    choice-simplification chase for TGD classes (plans transfer verbatim
    to the original bounds) and the FD simplification for FD classes
    (view accesses are translated back).  For ID classes the compiled
    schema's shared `RewriteEngine` decides answerability *first* —
    complete and terminating — so provably unanswerable queries are
    refused without running the (possibly divergent) extraction chase.
    Boolean queries only.
    """
    from ..constraints.analysis import ConstraintClass
    from .axioms import amondet_start_instance, prime_query
    from .deciders import (
        DEFAULT_CHASE_FACTS,
        _as_compiled,
        _chase_containment,
        decide_with_ids,
    )

    if query.free_variables:
        raise PlanExtractionError("static plans are extracted for Boolean CQs")

    compiled = _as_compiled(schema)
    fragment = compiled.constraint_class
    if fragment in (
        ConstraintClass.IDS,
        ConstraintClass.BOUNDED_WIDTH_IDS,
    ):
        # The rewriting route shares the per-fingerprint engine with the
        # deciders, so on a session this gate is usually a cache hit.
        from ..containment.rewriting import DEFAULT_MAX_DISJUNCTS

        gate = decide_with_ids(
            compiled,
            query,
            max_disjuncts=DEFAULT_MAX_DISJUNCTS
            if max_disjuncts is None
            else max_disjuncts,
            subsumption=subsumption,
            budget=budget,
        )
        if gate.is_no:
            return None
    if fragment in (ConstraintClass.NONE, ConstraintClass.FDS):
        kind = "fd"
    else:
        kind = "choice"
    simplified = compiled.simplification(kind)
    target = prime_query(query)
    decision = _chase_containment(
        amondet_start_instance(query),
        compiled.amondet(kind),
        target,
        max_rounds=max_rounds,
        max_facts=DEFAULT_CHASE_FACTS if max_facts is None else max_facts,
        matcher=compiled.matcher(),
        budget=budget,
    )
    if not decision.is_yes or decision.certificate is None:
        return None
    proof = extract_proof(decision.certificate, target)
    use_translation = simplified.kind != "choice"
    return saturation_plan(
        compiled.schema,
        query,
        proof,
        simplification=simplified if use_translation else None,
        name=f"PL_{query.name}",
    )
