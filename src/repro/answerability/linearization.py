"""Linearization of the AMonDet containment for ID constraints.

This implements the paper's technique from Prop 5.5 / Appendix E.3–E.5:
the containment ``Q ⊆Γ Q'`` for a schema with inclusion dependencies —
whose Γ mixes IDs with non-ID accessibility axioms — is *simulated* by a
set Σ^Lin of single-head **linear TGDs** over an expanded signature.  The
pipeline:

1. **Truncated-accessibility saturation** (Prop E.1): compute all derived
   axioms "if positions P of an R-fact are accessible then position j is"
   of breadth ≤ w (w = the maximum ID width), by the three closure rules
   (ID), (Transitivity), (Access).
2. **Σ^Lin construction**: relations ``R_P`` ("an R-fact whose positions
   P hold accessible values") with
   - (Lift) rules following each ID while updating the subscript,
   - (Transfer) rules producing the primed fact when the transferred
     closure of P covers the inputs of an exact method,
   - (Result-bounded Fact Transfer) rules for result-bounded methods
     (used as existence checks, per Thm 4.2 — one matching primed fact
     with fresh outputs),
   plus the primed copy Σ' of the IDs.
3. **Initial instance**: CanonDB(Q) saturated under the original and
   derived accessibility axioms (query constants are accessible), encoded
   into the ``R_P`` relations, with direct transfers for initial facts.

Because every produced rule is a single-head linear TGD, the containment
is then decided **completely and terminatingly** by the backward UCQ
rewriting of `repro.containment.rewriting` — this is our executable
counterpart of the NP procedure of Theorem 5.4 (and of the EXPTIME bound
of Theorem 5.3 for unbounded width, where w grows with the schema).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..constraints.tgd import TGD
from ..data.instance import Instance
from ..logic.atoms import Atom
from ..logic.queries import ConjunctiveQuery
from ..logic.terms import NullFactory, Variable
from ..schema.access import AccessMethod
from ..schema.schema import Schema
from .naming import primed

#: Saturation state: (relation, frozen position set P) -> transferred
#: closure of P (all positions accessible given P, via derived axioms).
Saturation = dict[tuple[str, frozenset[int]], set[int]]


def acc_relation(relation: str, positions: frozenset[int]) -> str:
    """Name of the R_P relation."""
    suffix = "_".join(str(p) for p in sorted(positions))
    return f"{relation}__acc_{suffix}"


@dataclass(frozen=True)
class IDShape:
    """An ID decomposed for the saturation rules.

    ``exported`` maps body positions to head positions (the variable
    flow); body/head relations and arities complete the picture.
    """

    body_relation: str
    head_relation: str
    body_arity: int
    head_arity: int
    exported: tuple[tuple[int, int], ...]  # (body position, head position)

    @staticmethod
    def of(dependency: TGD) -> "IDShape":
        if not dependency.is_inclusion_dependency():
            raise ValueError(f"not an ID: {dependency}")
        body_atom = dependency.body[0]
        head_atom = dependency.head[0]
        pairs = []
        for i, term in enumerate(body_atom.terms):
            positions = head_atom.positions_of(term)
            if positions:
                pairs.append((i, positions[0]))
        return IDShape(
            body_atom.relation,
            head_atom.relation,
            body_atom.arity,
            head_atom.arity,
            tuple(pairs),
        )


def _subsets_up_to(positions: Iterable[int], size: int):
    items = sorted(positions)
    for k in range(min(size, len(items)) + 1):
        yield from itertools.combinations(items, k)


def saturate_truncated_axioms(
    ids: Sequence[TGD],
    exact_methods: Sequence[AccessMethod],
    arities: dict[str, int],
    width: int,
) -> Saturation:
    """Prop E.1: derived truncated accessibility axioms of breadth ≤ w.

    Returns, for every relation R and position set P with |P| ≤ w, the
    *transferred closure* of P: all positions j such that the derived
    axiom ``acc(P) ∧ R(x̄) → acc(x_j)`` holds.
    """
    shapes = [IDShape.of(dependency) for dependency in ids]
    state: Saturation = {}
    for relation, arity in arities.items():
        for subset in _subsets_up_to(range(arity), width):
            state[(relation, frozenset(subset))] = set(subset)

    methods_by_relation: dict[str, list[AccessMethod]] = {}
    for method in exact_methods:
        methods_by_relation.setdefault(method.relation.name, []).append(
            method
        )

    changed = True
    while changed:
        changed = False
        # (Access): accessible inputs of an exact method expose the whole
        # fact.
        for (relation, __), closure in state.items():
            for method in methods_by_relation.get(relation, ()):
                if method.input_positions <= closure:
                    full = set(range(arities[relation]))
                    if not full <= closure:
                        closure.update(full)
                        changed = True
        # (ID): pull a derived axiom on the head back to the body.
        for shape in shapes:
            body_of_head = {h: b for b, h in shape.exported}
            exported_heads = frozenset(body_of_head)
            for head_subset in _subsets_up_to(exported_heads, width):
                head_key = (shape.head_relation, frozenset(head_subset))
                targets = state.get(head_key)
                if targets is None:
                    continue
                body_subset = frozenset(
                    body_of_head[h] for h in head_subset
                )
                body_key = (shape.body_relation, body_subset)
                body_closure = state.get(body_key)
                if body_closure is None:
                    continue
                for target in targets & exported_heads:
                    body_target = body_of_head[target]
                    if body_target not in body_closure:
                        body_closure.add(body_target)
                        changed = True
        # (Transitivity): close each entry under the others of the same
        # relation.
        for (relation, base), closure in state.items():
            for (relation2, premise), targets in state.items():
                if relation2 != relation or not premise <= closure:
                    continue
                if not targets <= closure:
                    closure.update(targets)
                    changed = True
    return state


@dataclass
class LinearizedSystem:
    """The output of the linearization: rules + initial instance builder."""

    rules: list[TGD]
    saturation: Saturation
    width: int
    schema: Schema

    def initial_instance(self, query: ConjunctiveQuery) -> Instance:
        return build_initial_instance(
            query, self.schema, self.saturation, self.width
        )


def _transfer_rules(
    schema: Schema, saturation: Saturation, width: int
) -> list[TGD]:
    rules: list[TGD] = []
    seen: set[tuple] = set()
    arities = schema.arities()
    for (relation, positions), closure in saturation.items():
        if relation not in arities:
            continue
        arity = arities[relation]
        terms = tuple(Variable(f"x{i}") for i in range(arity))
        body = (Atom(acc_relation(relation, positions), terms),)
        for method in schema.methods_on(relation):
            if not method.input_positions <= closure:
                continue
            if method.effective_bound() is None:
                key = ("exact", relation, positions)
                if key in seen:
                    continue
                seen.add(key)
                rules.append(
                    TGD(
                        body,
                        (Atom(primed(relation), terms),),
                        f"transfer_{relation}_{sorted(positions)}",
                    )
                )
            else:
                key = ("rb", relation, positions, method.input_positions)
                if key in seen:
                    continue
                seen.add(key)
                head_terms = tuple(
                    terms[i]
                    if i in method.input_positions
                    else Variable(f"z{i}")
                    for i in range(arity)
                )
                rules.append(
                    TGD(
                        body,
                        (Atom(primed(relation), head_terms),),
                        f"rb_transfer_{relation}_{sorted(positions)}",
                    )
                )
    return rules


def _lift_rules(
    ids: Sequence[TGD], saturation: Saturation, width: int
) -> list[TGD]:
    rules: list[TGD] = []
    seen: set[tuple] = set()
    for dependency in ids:
        shape = IDShape.of(dependency)
        head_of_body = dict(shape.exported)
        for (relation, positions), closure in saturation.items():
            if relation != shape.body_relation:
                continue
            body_terms = tuple(
                Variable(f"u{i}") for i in range(shape.body_arity)
            )
            transferred_exported = frozenset(
                head_of_body[b] for b in closure if b in head_of_body
            )
            key = (id(dependency), positions)
            if key in seen:
                continue
            seen.add(key)
            head_terms = tuple(
                body_terms[
                    next(
                        b for b, h in shape.exported if h == j
                    )
                ]
                if j in {h for __, h in shape.exported}
                else Variable(f"v{j}")
                for j in range(shape.head_arity)
            )
            rules.append(
                TGD(
                    (Atom(acc_relation(relation, positions), body_terms),),
                    (
                        Atom(
                            acc_relation(
                                shape.head_relation, transferred_exported
                            ),
                            head_terms,
                        ),
                    ),
                    f"lift_{shape.body_relation}_{sorted(positions)}",
                )
            )
    return rules


def linearize(schema: Schema) -> LinearizedSystem:
    """Build Σ^Lin for a schema whose constraints are IDs."""
    ids = [c for c in schema.constraints if isinstance(c, TGD)]
    for dependency in ids:
        if not dependency.is_inclusion_dependency():
            raise ValueError(
                f"linearization requires ID constraints, got {dependency}"
            )
    if any(
        not isinstance(c, TGD) for c in schema.constraints
    ):
        raise ValueError("linearization requires ID constraints only")
    width = max((d.width for d in ids), default=0)
    width = max(width, 1)
    exact_methods = [
        m for m in schema.methods if m.effective_bound() is None
    ]
    saturation = saturate_truncated_axioms(
        ids, exact_methods, schema.arities(), width
    )
    rules: list[TGD] = []
    rules.extend(_transfer_rules(schema, saturation, width))
    rules.extend(_lift_rules(ids, saturation, width))
    # Σ': the primed IDs (the I2 side chases freely).
    rules.extend(d.rename_relations(primed) for d in ids)
    return LinearizedSystem(rules, saturation, width, schema)


def build_initial_instance(
    query: ConjunctiveQuery,
    schema: Schema,
    saturation: Saturation,
    width: int,
) -> Instance:
    """I0^Lin: the saturated, subscript-encoded canonical database of Q."""
    canonical, __ = query.canonical_instance()
    accessible = {constant for constant in query.constants()}
    arities = schema.arities()

    # Saturate accessibility over the canonical database: original exact
    # method axioms (any breadth) + derived axioms (breadth ≤ w).
    changed = True
    while changed:
        changed = False
        for fact in list(canonical):
            if fact.relation not in arities:
                continue
            accessible_positions = frozenset(
                i
                for i, term in enumerate(fact.terms)
                if term in accessible
            )
            # Original axioms: exact methods with accessible inputs.
            for method in schema.methods_on(fact.relation):
                if method.effective_bound() is not None:
                    continue
                if method.input_positions <= accessible_positions:
                    for term in fact.terms:
                        if term not in accessible:
                            accessible.add(term)
                            changed = True
            # Derived axioms of breadth ≤ w.
            for subset in _subsets_up_to(accessible_positions, width):
                closure = saturation.get((fact.relation, frozenset(subset)))
                if closure is None:
                    continue
                for position in closure:
                    term = fact.terms[position]
                    if term not in accessible:
                        accessible.add(term)
                        changed = True

    nulls = NullFactory(prefix="lin")
    out = Instance()
    for fact in canonical:
        if fact.relation not in arities:
            continue
        accessible_positions = frozenset(
            i for i, term in enumerate(fact.terms) if term in accessible
        )
        for subset in _subsets_up_to(accessible_positions, width):
            out.add(
                Atom(
                    acc_relation(fact.relation, frozenset(subset)),
                    fact.terms,
                )
            )
        for method in schema.methods_on(fact.relation):
            if not method.input_positions <= accessible_positions:
                continue
            if method.effective_bound() is None:
                out.add(Atom(primed(fact.relation), fact.terms))
            else:
                head_terms = tuple(
                    term
                    if i in method.input_positions
                    else nulls.fresh(f"{fact.relation}{i}")
                    for i, term in enumerate(fact.terms)
                )
                out.add(Atom(primed(fact.relation), head_terms))
    return out
