"""Finite monotone answerability (Prop 2.2, Thm 7.4, Cor 7.3).

The paper's results are stated over all instances (finite and infinite);
this module handles the *finite* variant:

* for **finitely controllable** constraint classes — FDs, IDs,
  frontier-guarded TGDs (§2 / App B) — finite and unrestricted monotone
  answerability coincide (Prop 2.2), so the finite decider simply
  delegates;
* **UIDs + FDs** are *not* finitely controllable; Cor 7.3 reduces the
  finite variant to the unrestricted one over the **finite closure** Σ*
  (Cosmadakis–Kanellakis–Vardi), computed by
  `repro.constraints.finite_closure`.

The dividend: a query can be finitely answerable without being
answerable — the cycle rule adds dependencies that only hold in finite
models, and they can enable plans (see the tests for a worked case).
"""

from __future__ import annotations

from typing import Optional

from ..constraints.analysis import ConstraintClass
from ..constraints.fd import FunctionalDependency
from ..constraints.finite_closure import finite_closure
from ..constraints.tgd import TGD
from ..containment.decision import Decision
from ..logic.queries import ConjunctiveQuery
from ..runtime import Budget
from ..schema.schema import Schema
from ..containment.rewriting import DEFAULT_MAX_DISJUNCTS
from .deciders import (
    DEFAULT_CHASE_FACTS,
    AnswerabilityResult,
    SchemaLike,
    _as_compiled,
    decide_monotone_answerability,
    decide_with_uids_and_fds,
)

#: Fragments where finite controllability lets us delegate (Prop 2.2).
_FINITELY_CONTROLLABLE = {
    ConstraintClass.NONE,
    ConstraintClass.FDS,
    ConstraintClass.IDS,
    ConstraintClass.BOUNDED_WIDTH_IDS,
    ConstraintClass.FRONTIER_GUARDED_TGDS,
    ConstraintClass.GUARDED_TGDS,
}


def schema_with_finite_closure(schema: Schema) -> Schema:
    """The schema Sch* of Cor 7.3: constraints replaced by Σ*."""
    uids = [c for c in schema.constraints if isinstance(c, TGD)]
    fds = [
        c for c in schema.constraints if isinstance(c, FunctionalDependency)
    ]
    closure = finite_closure(uids, fds, schema.arities())
    result = Schema(schema.relations, (), schema.methods)
    for dependency in closure.uid_tgds(schema.arities()):
        result.add_constraint(dependency)
    for dependency in sorted(closure.fds, key=repr):
        result.add_constraint(dependency)
    return result


def decide_finite_monotone_answerability(
    schema: SchemaLike,
    query: ConjunctiveQuery,
    *,
    max_rounds: Optional[int] = 25,
    max_facts: int = DEFAULT_CHASE_FACTS,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    subsumption: bool = True,
    budget: Optional[Budget] = None,
    parallelism: int = 0,
) -> AnswerabilityResult:
    """Decide monotone answerability over *finite* instances.

    Dispatch: finitely controllable fragments delegate to the
    unrestricted decider (Prop 2.2); UIDs + FDs go through the finite
    closure (Cor 7.3, compiled and cached on the `CompiledSchema`);
    other fragments with result bounds are out of the paper's decidable
    territory and return UNKNOWN.
    """
    compiled = _as_compiled(schema)
    fragment = compiled.constraint_class
    if fragment in _FINITELY_CONTROLLABLE:
        result = decide_monotone_answerability(
            compiled,
            query,
            max_rounds=max_rounds,
            max_facts=max_facts,
            max_disjuncts=max_disjuncts,
            subsumption=subsumption,
            budget=budget,
            parallelism=parallelism,
        )
        result.decision.detail["finite_variant"] = (
            "delegated (finitely controllable, Prop 2.2)"
        )
        return result
    if fragment is ConstraintClass.UIDS_AND_FDS:
        closed = compiled.finite_closure()
        decision = decide_with_uids_and_fds(
            closed,
            query,
            max_rounds=max_rounds,
            max_facts=max_facts,
            budget=budget,
            parallelism=parallelism,
        )
        decision.detail["finite_variant"] = (
            "finite closure Σ* (Cor 7.3 / Thm 7.4)"
        )
        return AnswerabilityResult(
            decision, "finite-closure+choice", fragment
        )
    return AnswerabilityResult(
        Decision.unknown(
            "no finite-variant reduction for constraint class "
            f"{fragment.value}"
        ),
        "unsupported",
        fragment,
    )
