"""The cached-plan transformation of Appendix A (Prop A.2).

Under the **non-idempotent** semantics, repeating an access may return a
different valid output, so a plan that accesses the same method twice can
become nondeterministic even when it answers its query under the
idempotent semantics (Example A.1).  Prop A.2's proof fixes this
constructively: transform the plan so that every access command *unions
back* the tuples that earlier commands already obtained for the same
method and binding.

`with_output_caching` implements that transformation in the plan
language.  For the i-th access command on method ``mt``:

* the binding table of the command is materialized (``Inp_mt_i``);
* after the access, the output is augmented with, for every earlier
  access command j < i on ``mt``, the rows of ``Out_mt_j`` whose input-
  position values occur in ``Inp_mt_i`` (a join — output rows carry
  their binding at the method's input positions).

The transformed plan is monotone whenever the input is, and under the
non-idempotent semantics its tables always contain what the idempotent
execution of the original plan would have produced for the bindings
performed so far (the sandwich argument of Claim A.3).
"""

from __future__ import annotations

from .algebra import Expression, Join, Projection, TableRef, Union
from .plan import AccessCommand, Plan, PlanError, QueryCommand


def with_output_caching(plan: Plan, schema) -> Plan:
    """Prop A.2's cached plan: union earlier same-method access outputs.

    Only access commands that *keep all relation positions* are
    supported (output projections would lose the binding columns the
    join needs); `generate_static_plan` and hand-written plans in the
    examples satisfy this.  Raises `PlanError` otherwise.
    """
    commands: list = []
    #: method name -> list of (input table name or None, output table,
    #: input positions, arity)
    history: dict[str, list[tuple[str | None, str, tuple[int, ...], int]]] = {}
    for command in plan.commands:
        if isinstance(command, QueryCommand):
            commands.append(command)
            continue
        assert isinstance(command, AccessCommand)
        method = schema.method(command.method)
        arity = method.relation.arity
        outputs = command.resolved_output_positions(arity)
        if outputs != tuple(range(arity)):
            raise PlanError(
                f"{command!r}: caching needs full-tuple outputs (the "
                "binding columns must be present to replay earlier "
                "accesses)"
            )
        input_positions = method.sorted_input_positions
        input_count = len(input_positions)
        earlier = history.setdefault(command.method, [])

        if input_count == 0:
            # Input-free: earlier outputs are unioned back wholesale.
            raw_target = f"{command.target}__raw"
            commands.append(
                AccessCommand(
                    raw_target,
                    command.method,
                    command.expression,
                    command.input_map,
                    command.output_positions,
                )
            )
            parts: list[Expression] = [TableRef(raw_target, arity)]
            parts.extend(
                TableRef(out_table, arity) for __, out_table, *_ in earlier
            )
            commands.append(
                QueryCommand(
                    command.target,
                    Union(tuple(parts)) if len(parts) > 1 else parts[0],
                )
            )
            earlier.append((None, command.target, (), arity))
            continue

        # Materialize the binding table, then access, then union back the
        # earlier outputs matching these bindings.
        input_map = command.resolved_input_map(input_count)
        binding_table = f"{command.target}__inp"
        commands.append(
            QueryCommand(
                binding_table,
                Projection(command.expression, tuple(input_map)),
            )
        )
        raw_target = f"{command.target}__raw"
        commands.append(
            AccessCommand(
                raw_target,
                command.method,
                TableRef(binding_table, input_count),
                tuple(range(input_count)),
                command.output_positions,
            )
        )
        parts = [TableRef(raw_target, arity)]
        for __, out_table, *_ in earlier:
            # Earlier output rows whose binding occurs in this command's
            # binding table: join on the method's input positions.
            replay = Join(
                TableRef(out_table, arity),
                TableRef(binding_table, input_count),
                tuple(
                    (position, column)
                    for column, position in enumerate(input_positions)
                ),
            )
            parts.append(
                Projection(replay, tuple(range(arity)))
            )
        commands.append(
            QueryCommand(
                command.target,
                Union(tuple(parts)) if len(parts) > 1 else parts[0],
            )
        )
        earlier.append(
            (binding_table, command.target, input_positions, arity)
        )
    return Plan(tuple(commands), plan.return_table, plan.name + "_cached")
