"""Verifying that a plan answers a query.

Two complementary checkers:

* `verify_plan_symbolically` — for **monotone plans over exact methods**:
  the plan computes its UCQ (``plan_to_ucq``), and it answers Q iff that
  UCQ is equivalent to Q on all instances satisfying the constraints.
  Both containments are decided with the chase.  For plans that access
  result-bounded methods, UCQ equivalence remains *necessary* (the UCQ
  is the eager-selection output, which must equal Q(I)); the
  selection-independence direction is then delegated to the empirical
  checker, so the combined verdict is sound in both directions on the
  instances supplied.
* `plan_answers_query_on` (in `repro.plans.execution`) — exhaustive or
  sampled execution under valid access selections.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Union

from ..containment.chase_containment import contains
from ..containment.decision import Decision
from ..data.instance import Instance
from ..logic.queries import ConjunctiveQuery
from ..schema.schema import Schema
from .execution import plan_answers_query_on
from .plan import Plan
from .to_ucq import UCQConversionError, plan_to_ucq

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..service.compiled import CompiledSchema

SchemaLike = Union[Schema, "CompiledSchema"]


def verify_plan_symbolically(
    plan: Plan,
    query: ConjunctiveQuery,
    schema: SchemaLike,
    *,
    instances: Iterable[Instance] = (),
    max_rounds: Optional[int] = None,
) -> Decision:
    """Check that the plan answers the query.

    Returns YES when both UCQ containments are proved and — if the plan
    touches result-bounded methods — the empirical check passes on the
    supplied `instances`; NO when a containment is refuted or an
    execution mismatch is found; UNKNOWN when a chase was cut off.

    ``schema`` may be a raw `Schema` or a `repro.service.CompiledSchema`;
    the containment chases of a compiled schema run on its
    per-fingerprint matcher, so verifying several plan/query pairs over
    one compiled schema shares every match plan and check cache.
    """
    # Imported lazily: `repro.service` depends (transitively) on this
    # module, so the compiled-schema coercion cannot be a top import.
    from ..service.compiled import as_compiled

    compiled = as_compiled(schema)
    schema = compiled.schema
    matcher = compiled.matcher()
    try:
        ucq = plan_to_ucq(plan, schema)
    except UCQConversionError as error:
        return Decision.unknown(f"no UCQ conversion: {error}")

    constraints = list(schema.constraints)

    # Q ⊆_Σ UCQ(plan): the plan finds every answer.
    forward = contains(
        query, ucq, constraints, max_rounds=max_rounds, matcher=matcher
    )
    if forward.is_no:
        return Decision.no(
            "the plan can miss answers: Q ⊄ UCQ(plan) under Σ",
            certificate=forward,
        )
    if forward.is_unknown:
        return Decision.unknown(
            f"containment Q ⊆ UCQ(plan) undetermined: {forward.reason}"
        )

    # UCQ(plan) ⊆_Σ Q: the plan returns only answers.
    for disjunct in ucq.disjuncts:
        backward = contains(
            disjunct,
            query,
            constraints,
            max_rounds=max_rounds,
            matcher=matcher,
        )
        if backward.is_no:
            return Decision.no(
                f"the plan can return non-answers: disjunct "
                f"{disjunct.name} ⊄ Q under Σ",
                certificate=backward,
            )
        if backward.is_unknown:
            return Decision.unknown(
                f"containment {disjunct.name} ⊆ Q undetermined: "
                f"{backward.reason}"
            )

    uses_bounded = any(
        schema.method(c.method).effective_bound() is not None
        for c in plan.access_commands()
    )
    if not uses_bounded:
        return Decision.yes(
            "UCQ(plan) ≡ Q under Σ and all accesses are exact "
            "(selection-independent)",
        )

    materialized = list(instances)
    if not materialized:
        return Decision.unknown(
            "UCQ equivalence holds, but the plan uses result-bounded "
            "methods; provide instances for the selection-independence "
            "check"
        )
    if plan_answers_query_on(plan, query, schema, materialized):
        return Decision.yes(
            "UCQ(plan) ≡ Q under Σ and all enumerated access selections "
            f"agree on {len(materialized)} instance(s)",
        )
    return Decision.no(
        "an access selection makes the plan's output differ from Q",
    )
