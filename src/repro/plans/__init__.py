"""Plans: monotone relational algebra, the plan language, execution."""

from .algebra import (
    AlgebraError,
    ConstantRow,
    Difference,
    Expression,
    Join,
    Product,
    Projection,
    Row,
    Selection,
    Table,
    TableRef,
    Union,
    Unit,
)
from .caching import with_output_caching
from .execution import execute, plan_answers_query_on, possible_outputs
from .plan import AccessCommand, Command, Plan, PlanError, QueryCommand
from .to_ucq import UCQConversionError, plan_to_ucq
from .verify import verify_plan_symbolically

__all__ = [
    "AlgebraError", "ConstantRow", "Difference", "Expression", "Join",
    "Product", "Projection", "Row", "Selection", "Table", "TableRef",
    "Union", "Unit",
    "with_output_caching",
    "execute", "plan_answers_query_on", "possible_outputs",
    "AccessCommand", "Command", "Plan", "PlanError", "QueryCommand",
    "UCQConversionError", "plan_to_ucq", "verify_plan_symbolically",
]
