"""The plan language: access commands, middleware commands, Return.

A plan (paper §2) is a sequence of commands producing temporary tables:

* ``T := E`` — a **middleware query command** (`QueryCommand`): evaluate a
  relational algebra expression over earlier tables;
* ``T ⇐ mt ⇐ E`` — an **access command** (`AccessCommand`): evaluate E,
  turn each row into a binding for method ``mt`` (via the input map),
  perform the accesses, union the outputs (via the output map) into T;
* ``Return T0`` — designate the output table.

A plan is *monotone* when no expression uses `Difference`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..schema.schema import Schema
from .algebra import Expression


class PlanError(ValueError):
    """Raised on ill-formed plans."""


@dataclass(frozen=True)
class QueryCommand:
    """``target := expression``."""

    target: str
    expression: Expression

    @property
    def arity(self) -> int:
        return self.expression.arity

    def __repr__(self) -> str:
        return f"{self.target} := {self.expression!r}"


@dataclass(frozen=True)
class AccessCommand:
    """``target ⇐_output_map method ⇐_input_map expression``.

    * ``input_map[i]`` is the column of the expression feeding the i-th
      (sorted) input position of the method; the default feeds columns in
      order.
    * ``output_positions`` selects which relation positions land in the
      target table (default: all, in relation order).
    """

    target: str
    method: str
    expression: Expression
    input_map: Optional[tuple[int, ...]] = None
    output_positions: Optional[tuple[int, ...]] = None

    def resolved_input_map(self, input_count: int) -> tuple[int, ...]:
        if self.input_map is not None:
            return self.input_map
        return tuple(range(input_count))

    def resolved_output_positions(self, relation_arity: int) -> tuple[int, ...]:
        if self.output_positions is not None:
            return self.output_positions
        return tuple(range(relation_arity))

    def __repr__(self) -> str:
        return f"{self.target} <= {self.method} <= {self.expression!r}"


Command = Union[QueryCommand, AccessCommand]


@dataclass(frozen=True)
class Plan:
    """A complete plan: commands plus the returned table."""

    commands: tuple[Command, ...]
    return_table: str
    name: str = "PL"

    def __post_init__(self) -> None:
        if not isinstance(self.commands, tuple):
            object.__setattr__(self, "commands", tuple(self.commands))
        targets = [c.target for c in self.commands]
        if len(set(targets)) != len(targets):
            raise PlanError("plans must assign each table exactly once")
        if self.return_table not in targets:
            raise PlanError(
                f"return table {self.return_table} is never produced"
            )

    def is_monotone(self) -> bool:
        return all(
            c.expression.is_monotone() for c in self.commands
        )

    def access_commands(self) -> tuple[AccessCommand, ...]:
        return tuple(
            c for c in self.commands if isinstance(c, AccessCommand)
        )

    def methods_used(self) -> frozenset[str]:
        return frozenset(c.method for c in self.access_commands())

    def table_arities(self, schema: Schema) -> dict[str, int]:
        """Arity of every temporary table, validating the plan."""
        arities: dict[str, int] = {}
        for command in self.commands:
            for used in command.expression.tables_used():
                if used not in arities:
                    raise PlanError(
                        f"command {command!r} uses table {used} before it "
                        "is produced"
                    )
            if isinstance(command, QueryCommand):
                arities[command.target] = command.expression.arity
            else:
                method = schema.method(command.method)
                input_count = len(method.input_positions)
                input_map = command.resolved_input_map(input_count)
                if len(input_map) != input_count:
                    raise PlanError(
                        f"{command!r}: input map must cover the "
                        f"{input_count} input positions"
                    )
                for column in input_map:
                    if not 0 <= column < command.expression.arity:
                        raise PlanError(
                            f"{command!r}: input map column {column} out of "
                            "range"
                        )
                outputs = command.resolved_output_positions(
                    method.relation.arity
                )
                for position in outputs:
                    if not 0 <= position < method.relation.arity:
                        raise PlanError(
                            f"{command!r}: output position {position} out "
                            "of range"
                        )
                arities[command.target] = len(outputs)
        return arities

    def validate(self, schema: Schema) -> None:
        """Raise `PlanError` if the plan is ill-formed for the schema."""
        self.table_arities(schema)

    def __repr__(self) -> str:
        lines = [f"plan {self.name}:"]
        lines.extend(f"  {c!r};" for c in self.commands)
        lines.append(f"  Return {self.return_table};")
        return "\n".join(lines)
