"""Converting monotone plans to UCQs.

A monotone plan computes, in each temporary table, a union of
conjunctive queries over the base relations — *under the convention that
every access returns all matching tuples* (the eager selection).  When
the plan answers a query, its output is selection-independent, so the
UCQ is equivalent to the query on all instances satisfying the
constraints.  This conversion is what Prop 2.2 and Thm 7.4 use to move
between plans and UCQs (finite controllability arguments).

Each table is represented symbolically as a set of disjuncts; a disjunct
pairs body atoms with a head tuple of terms (the table's columns).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from ..logic.atoms import Atom
from ..logic.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..logic.terms import Term, Variable
from ..schema.schema import Schema
from .algebra import (
    ConstantRow,
    Difference,
    Expression,
    Join,
    Product,
    Projection,
    Selection,
    TableRef,
    Union,
    Unit,
)
from .plan import AccessCommand, Plan, PlanError, QueryCommand


@dataclass(frozen=True)
class _Disjunct:
    atoms: tuple[Atom, ...]
    head: tuple[Term, ...]

    def rename(self, suffix: str) -> "_Disjunct":
        mapping = {}
        for atom in self.atoms:
            for variable in atom.variables():
                mapping.setdefault(variable, Variable(variable.name + suffix))
        for term in self.head:
            if isinstance(term, Variable):
                mapping.setdefault(term, Variable(term.name + suffix))
        return _Disjunct(
            tuple(a.substitute(mapping) for a in self.atoms),
            tuple(mapping.get(t, t) for t in self.head),
        )


class UCQConversionError(PlanError):
    """Raised when the plan is not monotone (uses difference)."""


def _unify_disjunct(
    disjunct: _Disjunct, left: Term, right: Term
) -> _Disjunct | None:
    """Impose left = right on a disjunct; None if contradictory."""
    if left == right:
        return disjunct
    if isinstance(left, Variable):
        mapping = {left: right}
    elif isinstance(right, Variable):
        mapping = {right: left}
    else:
        return None  # two distinct rigid terms
    return _Disjunct(
        tuple(a.substitute(mapping) for a in disjunct.atoms),
        tuple(mapping.get(t, t) for t in disjunct.head),
    )


def _expression_disjuncts(
    expression: Expression,
    tables: dict[str, list[_Disjunct]],
    counter: itertools.count,
) -> list[_Disjunct]:
    if isinstance(expression, TableRef):
        return [
            d.rename(f"_t{next(counter)}") for d in tables[expression.table]
        ]
    if isinstance(expression, Unit):
        return [_Disjunct((), ())]
    if isinstance(expression, ConstantRow):
        return [_Disjunct((), tuple(expression.values))]
    if isinstance(expression, Selection):
        out: list[_Disjunct] = []
        for disjunct in _expression_disjuncts(
            expression.child, tables, counter
        ):
            current: _Disjunct | None = disjunct
            for left_col, right in expression.conditions:
                assert current is not None
                left_term = current.head[left_col]
                right_term = (
                    current.head[right] if isinstance(right, int) else right
                )
                current = _unify_disjunct(current, left_term, right_term)
                if current is None:
                    break
            if current is not None:
                out.append(current)
        return out
    if isinstance(expression, Projection):
        return [
            _Disjunct(d.atoms, tuple(d.head[c] for c in expression.columns))
            for d in _expression_disjuncts(expression.child, tables, counter)
        ]
    if isinstance(expression, (Product, Join)):
        left = _expression_disjuncts(expression.left, tables, counter)
        right = _expression_disjuncts(expression.right, tables, counter)
        out = []
        for l in left:
            for r in right:
                r2 = r.rename(f"_j{next(counter)}")
                combined: _Disjunct | None = _Disjunct(
                    l.atoms + r2.atoms, l.head + r2.head
                )
                if isinstance(expression, Join):
                    for lc, rc in expression.on:
                        assert combined is not None
                        combined = _unify_disjunct(
                            combined,
                            combined.head[lc],
                            combined.head[expression.left.arity + rc],
                        )
                        if combined is None:
                            break
                if combined is not None:
                    out.append(combined)
        return out
    if isinstance(expression, Union):
        out = []
        for part in expression.parts:
            out.extend(_expression_disjuncts(part, tables, counter))
        return out
    if isinstance(expression, Difference):
        raise UCQConversionError(
            "plans using difference are not monotone; no UCQ conversion"
        )
    raise UCQConversionError(f"unsupported expression {expression!r}")


def plan_to_ucq(plan: Plan, schema: Schema) -> UnionOfConjunctiveQueries:
    """Convert a monotone plan to the UCQ it computes under eager access.

    The result's free variables are the columns of the return table
    (Boolean UCQ for a 0-ary return table).
    """
    plan.validate(schema)
    counter = itertools.count()
    tables: dict[str, list[_Disjunct]] = {}
    for command in plan.commands:
        if isinstance(command, QueryCommand):
            tables[command.target] = _expression_disjuncts(
                command.expression, tables, counter
            )
            continue
        assert isinstance(command, AccessCommand)
        method = schema.method(command.method)
        relation = method.relation
        input_positions = method.sorted_input_positions
        input_map = command.resolved_input_map(len(input_positions))
        outputs = command.resolved_output_positions(relation.arity)
        produced: list[_Disjunct] = []
        for disjunct in _expression_disjuncts(
            command.expression, tables, counter
        ):
            index = next(counter)
            terms: list[Term] = [
                Variable(f"a{index}_{p}") for p in range(relation.arity)
            ]
            for column, position in zip(input_map, input_positions):
                terms[position] = disjunct.head[column]
            access_atom = Atom(relation.name, tuple(terms))
            produced.append(
                _Disjunct(
                    disjunct.atoms + (access_atom,),
                    tuple(terms[p] for p in outputs),
                )
            )
        tables[command.target] = produced

    result = tables[plan.return_table]
    disjuncts: list[ConjunctiveQuery] = []
    for i, disjunct in enumerate(result):
        free: list[Variable] = []
        for term in disjunct.head:
            if isinstance(term, Variable):
                free.append(term)
            else:
                raise UCQConversionError(
                    "constant output columns are not supported in the UCQ "
                    "conversion; project them away first"
                )
        if not disjunct.atoms:
            raise UCQConversionError(
                "disjunct with empty body (constant-only plan output) has "
                "no CQ representation"
            )
        disjuncts.append(
            ConjunctiveQuery(
                disjunct.atoms, tuple(free), f"{plan.name}_{i}"
            )
        )
    if not disjuncts:
        # The plan's output is always empty: represent as an unsatisfiable
        # CQ over a reserved nullary relation name.
        raise UCQConversionError(
            "plan output is the constant empty table; no UCQ representation"
        )
    return UnionOfConjunctiveQueries(tuple(disjuncts), name=plan.name)
