"""Plan execution under access selections.

Executing a plan against an instance requires resolving the
nondeterminism of result-bounded methods.  Two semantics are implemented
(Appendix A):

* **idempotent** (the paper's main semantics): one access selection is
  fixed for the whole run, so repeating an access repeats its output —
  our `AccessSelection` objects memoize, giving this for free;
* **non-idempotent**: every access command draws from a *fresh* selection,
  so the same access in two commands may disagree.

`possible_outputs` enumerates the outputs over all valid selections on
small instances (exponential — for tests and the semantic falsifier), and
`plan_answers_query_on` empirically checks the answerability property on
given instances.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Iterator, Optional

from ..accessibility.access import (
    AccessRequest,
    AccessSelection,
    EagerSelection,
    RandomSelection,
    StingySelection,
    valid_outputs,
)
from ..data.instance import Instance
from ..logic.evaluation import evaluate_cq
from ..logic.queries import ConjunctiveQuery
from ..logic.terms import GroundTerm
from ..schema.schema import Schema
from .algebra import Row, Table
from .plan import AccessCommand, Plan, QueryCommand


def _perform_access_command(
    command: AccessCommand,
    environment: dict[str, Table],
    instance: Instance,
    schema: Schema,
    selection: AccessSelection,
) -> Table:
    method = schema.method(command.method)
    input_positions = method.sorted_input_positions
    input_map = command.resolved_input_map(len(input_positions))
    outputs = command.resolved_output_positions(method.relation.arity)
    rows = command.expression.evaluate(environment)
    produced: set[Row] = set()
    for row in rows:
        binding = tuple(row[column] for column in input_map)
        request = AccessRequest(method, binding)
        for fact in selection.select(instance, request):
            produced.add(tuple(fact.terms[p] for p in outputs))
    return frozenset(produced)


def execute(
    plan: Plan,
    instance: Instance,
    schema: Schema,
    selection: Optional[AccessSelection] = None,
    *,
    semantics: str = "idempotent",
    selection_factory: Optional[Callable[[], AccessSelection]] = None,
) -> Table:
    """Run the plan; return the contents of the return table.

    For idempotent semantics pass one `selection` (default eager).  For
    non-idempotent semantics pass a `selection_factory`; each access
    command gets a fresh selection from it.
    """
    if semantics not in ("idempotent", "non_idempotent"):
        raise ValueError(f"unknown semantics {semantics}")
    plan.validate(schema)
    if semantics == "idempotent":
        shared = selection or EagerSelection()
        factory = lambda: shared  # noqa: E731
    else:
        if selection_factory is None:
            counter = itertools.count()
            factory = lambda: RandomSelection(seed=next(counter))  # noqa: E731
        else:
            factory = selection_factory

    environment: dict[str, Table] = {}
    for command in plan.commands:
        if isinstance(command, QueryCommand):
            environment[command.target] = command.expression.evaluate(
                environment
            )
        else:
            environment[command.target] = _perform_access_command(
                command, environment, instance, schema, factory()
            )
    return environment[plan.return_table]


def possible_outputs(
    plan: Plan,
    instance: Instance,
    schema: Schema,
    *,
    per_access_limit: int = 16,
    total_limit: int = 4096,
) -> Iterator[Table]:
    """Enumerate plan outputs over valid (idempotent) access selections.

    Branches over every valid output of every distinct access performed.
    Exponential — intended for the small instances of the semantic tests.
    Limits cap the per-access and overall branching.
    """
    plan.validate(schema)
    emitted = 0

    def run(
        command_index: int,
        environment: dict[str, Table],
        memo: dict[tuple[str, tuple[GroundTerm, ...]], frozenset],
    ) -> Iterator[Table]:
        nonlocal emitted
        if command_index == len(plan.commands):
            yield environment[plan.return_table]
            emitted += 1
            return
        command = plan.commands[command_index]
        if isinstance(command, QueryCommand):
            environment = dict(environment)
            environment[command.target] = command.expression.evaluate(
                environment
            )
            yield from run(command_index + 1, environment, memo)
            return

        method = schema.method(command.method)
        input_positions = method.sorted_input_positions
        input_map = command.resolved_input_map(len(input_positions))
        outputs = command.resolved_output_positions(method.relation.arity)
        rows = sorted(command.expression.evaluate(environment), key=repr)
        bindings = []
        seen = set()
        for row in rows:
            binding = tuple(row[column] for column in input_map)
            if binding not in seen:
                seen.add(binding)
                bindings.append(binding)

        def assign(binding_index: int, memo_state: dict) -> Iterator[dict]:
            """Choose outputs for each binding (respecting the memo)."""
            if binding_index == len(bindings):
                yield memo_state
                return
            binding = bindings[binding_index]
            key = (method.name, binding)
            if key in memo_state:
                yield from assign(binding_index + 1, memo_state)
                return
            request = AccessRequest(method, binding)
            for output in valid_outputs(
                instance, request, limit=per_access_limit
            ):
                next_memo = dict(memo_state)
                next_memo[key] = output
                yield from assign(binding_index + 1, next_memo)

        for memo_state in assign(0, memo):
            if emitted >= total_limit:
                return
            produced: set[Row] = set()
            for binding in bindings:
                for fact in memo_state[(method.name, binding)]:
                    produced.add(tuple(fact.terms[p] for p in outputs))
            next_env = dict(environment)
            next_env[command.target] = frozenset(produced)
            yield from run(command_index + 1, next_env, memo_state)

    yield from run(0, {}, {})


def plan_answers_query_on(
    plan: Plan,
    query: ConjunctiveQuery,
    schema: Schema,
    instances: Iterable[Instance],
    *,
    exhaustive: bool = True,
    extra_selections: Iterable[AccessSelection] = (),
    per_access_limit: int = 16,
    total_limit: int = 4096,
) -> bool:
    """Empirically check that the plan answers the query on instances.

    For each instance satisfying the schema constraints, the plan must
    yield exactly ``query(I)`` under every enumerated access selection
    (exhaustively when `exhaustive`, else under eager/stingy/random plus
    any `extra_selections`).
    """
    for instance in instances:
        if not schema.satisfied_by(instance):
            continue
        expected = frozenset(evaluate_cq(query, instance))
        if exhaustive:
            for output in possible_outputs(
                plan,
                instance,
                schema,
                per_access_limit=per_access_limit,
                total_limit=total_limit,
            ):
                if output != expected:
                    return False
        else:
            selections: list[AccessSelection] = [
                EagerSelection(),
                StingySelection(),
                RandomSelection(seed=1),
                RandomSelection(seed=2),
            ]
            selections.extend(extra_selections)
            for selection in selections:
                selection.reset()
                output = execute(plan, instance, schema, selection)
                if output != expected:
                    return False
    return True
