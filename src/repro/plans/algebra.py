"""Monotone relational algebra over temporary tables.

Middleware commands of plans (paper §2) evaluate relational algebra
expressions over previously produced temporary tables.  *Monotone* plans
may not use the difference operator; `Difference` is provided for the
RA-plans of Appendix I and flags the plan as non-monotone.

Tables are sets of equal-length tuples of ground terms; columns are
positional.  Expressions form an immutable tree with arity checking at
construction and evaluation against an environment mapping table names to
their current contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Union

from ..logic.terms import Constant, GroundTerm

Row = tuple[GroundTerm, ...]
Table = FrozenSet[Row]
Environment = Mapping[str, Table]


class AlgebraError(ValueError):
    """Raised on malformed expressions (arity mismatches, unknown tables)."""


@dataclass(frozen=True)
class Expression:
    """Base class for relational algebra expressions."""

    @property
    def arity(self) -> int:
        raise NotImplementedError

    def is_monotone(self) -> bool:
        """True iff the expression avoids the difference operator."""
        return all(child.is_monotone() for child in self.children())

    def children(self) -> tuple["Expression", ...]:
        return ()

    def tables_used(self) -> frozenset[str]:
        used: set[str] = set()
        stack: list[Expression] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, TableRef):
                used.add(node.table)
            stack.extend(node.children())
        return frozenset(used)

    def evaluate(self, environment: Environment) -> Table:
        raise NotImplementedError


@dataclass(frozen=True)
class TableRef(Expression):
    """Reference to a temporary table (with declared arity)."""

    table: str
    table_arity: int

    @property
    def arity(self) -> int:
        return self.table_arity

    def evaluate(self, environment: Environment) -> Table:
        if self.table not in environment:
            raise AlgebraError(f"unknown table {self.table}")
        return environment[self.table]

    def __repr__(self) -> str:
        return self.table


@dataclass(frozen=True)
class Unit(Expression):
    """The nullary table containing the single empty tuple.

    Feeding `Unit` to an access command on an input-free method performs
    exactly one access with the trivial binding (Example 2.1).
    """

    @property
    def arity(self) -> int:
        return 0

    def evaluate(self, environment: Environment) -> Table:
        return frozenset({()})

    def __repr__(self) -> str:
        return "⟨⟩"


@dataclass(frozen=True)
class ConstantRow(Expression):
    """A single-row table of constants (lets plans mention constants)."""

    values: tuple[Constant, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        for value in self.values:
            if not isinstance(value, Constant):
                raise AlgebraError("ConstantRow takes constants only")

    @property
    def arity(self) -> int:
        return len(self.values)

    def evaluate(self, environment: Environment) -> Table:
        return frozenset({tuple(self.values)})

    def __repr__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"row({inner})"


#: A selection condition: column == column or column == constant.
Condition = Union[tuple[int, int], tuple[int, Constant]]


@dataclass(frozen=True)
class Selection(Expression):
    """σ_conditions(child); conditions are column=column or column=const."""

    child: Expression
    conditions: tuple[Condition, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.conditions, tuple):
            object.__setattr__(self, "conditions", tuple(self.conditions))
        for left, right in self.conditions:
            if not 0 <= left < self.child.arity:
                raise AlgebraError(f"selection column {left} out of range")
            if isinstance(right, int) and not 0 <= right < self.child.arity:
                raise AlgebraError(f"selection column {right} out of range")

    @property
    def arity(self) -> int:
        return self.child.arity

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def _matches(self, row: Row) -> bool:
        for left, right in self.conditions:
            expected = row[right] if isinstance(right, int) else right
            if row[left] != expected:
                return False
        return True

    def evaluate(self, environment: Environment) -> Table:
        return frozenset(
            row for row in self.child.evaluate(environment)
            if self._matches(row)
        )

    def __repr__(self) -> str:
        conds = ", ".join(
            f"${l}=${r}" if isinstance(r, int) else f"${l}={r!r}"
            for l, r in self.conditions
        )
        return f"σ[{conds}]({self.child!r})"


@dataclass(frozen=True)
class Projection(Expression):
    """π_columns(child); columns may repeat or reorder."""

    child: Expression
    columns: tuple[int, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.columns, tuple):
            object.__setattr__(self, "columns", tuple(self.columns))
        for column in self.columns:
            if not 0 <= column < self.child.arity:
                raise AlgebraError(f"projection column {column} out of range")

    @property
    def arity(self) -> int:
        return len(self.columns)

    def children(self) -> tuple[Expression, ...]:
        return (self.child,)

    def evaluate(self, environment: Environment) -> Table:
        return frozenset(
            tuple(row[c] for c in self.columns)
            for row in self.child.evaluate(environment)
        )

    def __repr__(self) -> str:
        cols = ",".join(str(c) for c in self.columns)
        return f"π[{cols}]({self.child!r})"


@dataclass(frozen=True)
class Product(Expression):
    """Cartesian product; columns of left then right."""

    left: Expression
    right: Expression

    @property
    def arity(self) -> int:
        return self.left.arity + self.right.arity

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def evaluate(self, environment: Environment) -> Table:
        left_rows = self.left.evaluate(environment)
        right_rows = self.right.evaluate(environment)
        return frozenset(
            l + r for l in left_rows for r in right_rows
        )

    def __repr__(self) -> str:
        return f"({self.left!r} × {self.right!r})"


@dataclass(frozen=True)
class Join(Expression):
    """Equijoin on column pairs (left column, right column); keeps all
    columns of both inputs (left columns first)."""

    left: Expression
    right: Expression
    on: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if not isinstance(self.on, tuple):
            object.__setattr__(self, "on", tuple(self.on))
        for l, r in self.on:
            if not 0 <= l < self.left.arity:
                raise AlgebraError(f"join column {l} out of range (left)")
            if not 0 <= r < self.right.arity:
                raise AlgebraError(f"join column {r} out of range (right)")

    @property
    def arity(self) -> int:
        return self.left.arity + self.right.arity

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def evaluate(self, environment: Environment) -> Table:
        left_rows = self.left.evaluate(environment)
        right_rows = self.right.evaluate(environment)
        index: dict[tuple, list[Row]] = {}
        for row in right_rows:
            key = tuple(row[r] for __, r in self.on)
            index.setdefault(key, []).append(row)
        out: set[Row] = set()
        for row in left_rows:
            key = tuple(row[l] for l, __ in self.on)
            for other in index.get(key, ()):
                out.add(row + other)
        return frozenset(out)

    def __repr__(self) -> str:
        conds = ",".join(f"{l}={r}" for l, r in self.on)
        return f"({self.left!r} ⋈[{conds}] {self.right!r})"


@dataclass(frozen=True)
class Union(Expression):
    """Union of same-arity expressions."""

    parts: tuple[Expression, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.parts, tuple):
            object.__setattr__(self, "parts", tuple(self.parts))
        if not self.parts:
            raise AlgebraError("union of nothing")
        arity = self.parts[0].arity
        for part in self.parts:
            if part.arity != arity:
                raise AlgebraError("union of different arities")

    @property
    def arity(self) -> int:
        return self.parts[0].arity

    def children(self) -> tuple[Expression, ...]:
        return self.parts

    def evaluate(self, environment: Environment) -> Table:
        out: set[Row] = set()
        for part in self.parts:
            out.update(part.evaluate(environment))
        return frozenset(out)

    def __repr__(self) -> str:
        return " ∪ ".join(repr(p) for p in self.parts)


@dataclass(frozen=True)
class Difference(Expression):
    """Set difference — allowed in RA-plans only (Appendix I)."""

    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.left.arity != self.right.arity:
            raise AlgebraError("difference of different arities")

    @property
    def arity(self) -> int:
        return self.left.arity

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def is_monotone(self) -> bool:
        return False

    def evaluate(self, environment: Environment) -> Table:
        return frozenset(
            self.left.evaluate(environment)
            - self.right.evaluate(environment)
        )

    def __repr__(self) -> str:
        return f"({self.left!r} − {self.right!r})"
