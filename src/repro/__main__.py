"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``decide SCHEMA.json QUERY``
    Decide monotone answerability of the query under the schema; exit
    code 0 for YES, 1 for NO, 2 for UNKNOWN.
``plan SCHEMA.json QUERY``
    Extract and print a static plan for an answerable query.
``simplify SCHEMA.json {existence-check,fd,choice}``
    Print the simplified schema (JSON).
``classify SCHEMA.json``
    Print the detected constraint fragment and its Table-1 row.

The schema format is documented in `repro.io`; queries use the text
syntax ``"Q(n) :- Prof(i, n, 10000)"`` (or a bare Boolean body), either
inline or as a path to a file containing it.
"""

from __future__ import annotations

import argparse
import json
import sys

from .answerability import (
    choice_simplification,
    decide_monotone_answerability,
    existence_check_simplification,
    fd_simplification,
    generate_static_plan,
)
from .answerability.finite import decide_finite_monotone_answerability
from .io import load_query, load_schema, schema_to_dict


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Answerability of conjunctive queries over result-bounded "
            "data interfaces (Amarilli & Benedikt, PODS 2018)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    decide = commands.add_parser(
        "decide", help="decide monotone answerability"
    )
    decide.add_argument("schema", help="path to the JSON schema")
    decide.add_argument("query", help="query text or path to a query file")
    decide.add_argument(
        "--finite",
        action="store_true",
        help="decide the finite variant (Prop 2.2 / Cor 7.3)",
    )
    decide.add_argument(
        "--max-rounds",
        type=int,
        default=25,
        help="chase round cap for the semidecidable routes",
    )

    plan = commands.add_parser(
        "plan", help="extract a static plan for an answerable query"
    )
    plan.add_argument("schema")
    plan.add_argument("query")

    simplify = commands.add_parser(
        "simplify", help="print a simplified schema"
    )
    simplify.add_argument("schema")
    simplify.add_argument(
        "kind", choices=["existence-check", "fd", "choice"]
    )

    classify = commands.add_parser(
        "classify", help="detect the constraint fragment"
    )
    classify.add_argument("schema")
    return parser


def _cmd_decide(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    query = load_query(args.query)
    if args.finite:
        result = decide_finite_monotone_answerability(
            schema, query, max_rounds=args.max_rounds
        )
    else:
        result = decide_monotone_answerability(
            schema, query, max_rounds=args.max_rounds
        )
    print(f"query     : {query!r}")
    print(f"fragment  : {result.constraint_class.value}")
    print(f"route     : {result.route}")
    print(f"decision  : {result.truth.value.upper()}")
    print(f"reason    : {result.decision.reason}")
    return {"yes": 0, "no": 1, "unknown": 2}[result.truth.value]


def _cmd_plan(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    query = load_query(args.query)
    plan = generate_static_plan(schema, query)
    if plan is None:
        print("no plan: the query is not (provably) monotone answerable")
        return 1
    print(plan)
    return 0


def _cmd_simplify(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    transform = {
        "existence-check": existence_check_simplification,
        "fd": fd_simplification,
        "choice": choice_simplification,
    }[args.kind]
    result = transform(schema)
    print(json.dumps(schema_to_dict(result.schema), indent=2))
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    fragment = schema.constraint_class()
    print(f"fragment      : {fragment.value}")
    print(f"result bounds : {len(schema.result_bounded_methods())} methods")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "decide": _cmd_decide,
        "plan": _cmd_plan,
        "simplify": _cmd_simplify,
        "classify": _cmd_classify,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
