"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``decide SCHEMA.json QUERY [--json]``
    Decide monotone answerability of the query under the schema; exit
    code 0 for YES, 1 for NO, 2 for UNKNOWN.
``plan SCHEMA.json QUERY [--json]``
    Extract and print a static plan for an answerable query.
``batch SCHEMA.json [--input FILE]``
    JSON-lines service mode: one request per input line (a bare query
    string or a `DecideRequest` object), one `DecideResponse` JSON per
    output line.  Requests may carry an inline ``schema``; routing goes
    through a `repro.server.SessionPool`, so sessions are compiled once
    per distinct schema fingerprint and reused across lines.
``serve [SCHEMA.json] [--host H] [--port P] [--workers N] ...``
    The asyncio JSON-lines TCP server: the ``batch`` protocol on a
    socket, decisions on a worker-thread pool, per-fingerprint session
    pooling with LRU eviction (``--pool-size``, ``--max-fingerprints``)
    and bounded in-flight backpressure (``--max-pending``).  ``op``
    frames ``stats`` and ``ping`` expose introspection; the default
    schema is optional when every request carries its own.  Resilience
    knobs: ``--request-deadline`` (per-request budget),
    ``--drain-timeout`` (graceful SIGTERM drain), ``--client-rate`` /
    ``--client-burst`` / ``--max-inflight-per-client`` (per-client
    quotas), ``--shed-after`` (Overloaded shedding at gate saturation).
``supervise [SCHEMA.json] [--port P] ...``
    The ``serve`` loop in a supervised child process: an ``op: ping``
    health watchdog, crash restarts with jittered exponential backoff,
    and a crash-loop breaker (``--max-crashes``/``--crash-window``).
``simplify SCHEMA.json {existence-check,fd,choice}``
    Print the simplified schema (JSON).
``classify SCHEMA.json [--json]``
    Print the detected constraint fragment and its Table-1 row.

All commands are built on `repro.service.Session`, so a process serving
many queries pays the per-schema analysis once.  ``--max-rounds`` /
``--max-facts`` default to the chase limits of
`repro.answerability.deciders` (`DEFAULT_CHASE_ROUNDS`,
`DEFAULT_CHASE_FACTS`) — the single source of truth.

The schema format is documented in `repro.io`; queries use the text
syntax ``"Q(n) :- Prof(i, n, 10000)"`` (or a bare Boolean body), either
inline or as a path to a file containing it.
"""

from __future__ import annotations

import argparse
import json
import sys

from .answerability import (
    choice_simplification,
    existence_check_simplification,
    fd_simplification,
)
from .answerability.deciders import (
    DEFAULT_CHASE_FACTS,
    DEFAULT_CHASE_ROUNDS,
)
from .containment.rewriting import DEFAULT_MAX_DISJUNCTS
from .io import (
    DecideRequest,
    ErrorFrame,
    ReadyFrame,
    json_safe,
    load_query,
    load_schema,
    schema_to_dict,
)
from .server import (
    DEFAULT_MAX_FINGERPRINTS,
    DEFAULT_MAX_PENDING,
    DEFAULT_POOL_SIZE,
    DEFAULT_PORT,
    DEFAULT_WORKERS,
    DecideServer,
    SessionLimits,
    SessionPool,
    introspection_frame,
)
from .service import Session, compile_schema


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Answerability of conjunctive queries over result-bounded "
            "data interfaces (Amarilli & Benedikt, PODS 2018)."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_limits(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--max-rounds",
            type=int,
            default=DEFAULT_CHASE_ROUNDS,
            help="chase round cap for the semidecidable routes "
            f"(default: {DEFAULT_CHASE_ROUNDS})",
        )
        subparser.add_argument(
            "--max-facts",
            type=int,
            default=DEFAULT_CHASE_FACTS,
            help="chase fact cap protecting against breadth explosion "
            f"(default: {DEFAULT_CHASE_FACTS})",
        )
        subparser.add_argument(
            "--max-disjuncts",
            type=int,
            default=DEFAULT_MAX_DISJUNCTS,
            help="budget for the ID route's backward UCQ rewriting; "
            "exceeding it yields UNKNOWN with a structured error "
            f"(default: {DEFAULT_MAX_DISJUNCTS})",
        )
        subparser.add_argument(
            "--no-subsumption",
            action="store_true",
            help="disable subsumption pruning of the ID route's "
            "rewriting (the pruned UCQ is logically equivalent; this "
            "opt-out restores the raw rewriting output)",
        )
        subparser.add_argument(
            "--chase-parallelism",
            type=int,
            default=0,
            help="worker threads for the chase's per-round trigger "
            "collection (0/1 = sequential; results are identical for "
            "every setting)",
        )

    def add_cache_dir(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help="directory for the durable artifact cache (a shared "
            "SQLite store): decisions, rewrite expansions, and warmed "
            "schemas persist across restarts and are shared between "
            "concurrent workers; corruption or version drift degrades "
            "to recompute, never to an error (default: no persistence)",
        )

    decide = commands.add_parser(
        "decide", help="decide monotone answerability"
    )
    decide.add_argument("schema", help="path to the JSON schema")
    decide.add_argument("query", help="query text or path to a query file")
    decide.add_argument(
        "--finite",
        action="store_true",
        help="decide the finite variant (Prop 2.2 / Cor 7.3)",
    )
    decide.add_argument(
        "--json",
        action="store_true",
        help="emit the DecideResponse as JSON instead of text",
    )
    add_limits(decide)
    add_cache_dir(decide)

    plan = commands.add_parser(
        "plan", help="extract a static plan for an answerable query"
    )
    plan.add_argument("schema")
    plan.add_argument("query")
    plan.add_argument(
        "--json",
        action="store_true",
        help="emit the PlanResponse as JSON instead of text",
    )
    add_limits(plan)
    add_cache_dir(plan)

    batch = commands.add_parser(
        "batch",
        help="decide many queries: JSON-lines in, JSON-lines out",
    )
    batch.add_argument("schema", help="path to the default JSON schema")
    batch.add_argument(
        "--input",
        default="-",
        help="path to the JSON-lines request file (default: stdin)",
    )
    batch.add_argument(
        "--stats",
        action="store_true",
        help="after the stream, print the session pool's aggregated "
        "cache, rewrite-engine, and matching statistics as one JSON "
        "line on stderr",
    )
    add_limits(batch)
    add_cache_dir(batch)

    serve = commands.add_parser(
        "serve",
        help="serve the batch protocol on a TCP socket (asyncio, "
        "per-fingerprint session pooling)",
    )
    serve.add_argument(
        "schema",
        nargs="?",
        default=None,
        help="path to the default JSON schema (optional: requests may "
        "each carry an inline schema)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port, 0 for ephemeral (default: {DEFAULT_PORT})",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_WORKERS,
        help="decision worker threads "
        f"(default: {DEFAULT_WORKERS})",
    )
    serve.add_argument(
        "--pool-size",
        type=int,
        default=DEFAULT_POOL_SIZE,
        help="sessions per schema fingerprint "
        f"(default: {DEFAULT_POOL_SIZE})",
    )
    serve.add_argument(
        "--max-fingerprints",
        type=int,
        default=DEFAULT_MAX_FINGERPRINTS,
        help="distinct schema fingerprints held live before LRU "
        f"eviction (default: {DEFAULT_MAX_FINGERPRINTS})",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=DEFAULT_MAX_PENDING,
        help="bound on queued-or-running decisions; past it the server "
        "stops reading new frames until capacity frees "
        f"(default: {DEFAULT_MAX_PENDING})",
    )
    serve.add_argument(
        "--warm",
        default=None,
        metavar="MANIFEST",
        help="fingerprint warmup manifest (JSON: a 'schemas' list of "
        "inline schema objects or paths) or a precompiled bundle "
        "written by repro.cache.write_bundle; every entry is "
        "precompiled into the session pool before the readiness line "
        "is emitted, so warmed fingerprints never pay first-request "
        "compile latency",
    )

    def add_serving_options(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument(
            "--request-deadline",
            type=float,
            default=None,
            metavar="MS",
            help="default per-request deadline in milliseconds; a "
            "request's own deadline_ms is capped at this value "
            "(default: unbounded)",
        )
        subparser.add_argument(
            "--drain-timeout",
            type=float,
            default=10.0,
            metavar="SECONDS",
            help="on SIGTERM/shutdown, seconds to let in-flight work "
            "finish (budgets are cancelled halfway through) before "
            "force-closing connections (default: 10)",
        )
        subparser.add_argument(
            "--client-rate",
            type=float,
            default=None,
            metavar="PER_SECOND",
            help="per-client token-bucket refill rate in requests per "
            "second; past it requests are shed with retryable "
            "Overloaded frames (default: no rate limit)",
        )
        subparser.add_argument(
            "--client-burst",
            type=float,
            default=8.0,
            help="per-client token-bucket capacity (default: 8)",
        )
        subparser.add_argument(
            "--max-inflight-per-client",
            type=int,
            default=None,
            metavar="N",
            help="concurrent in-flight requests allowed per client "
            "address before shedding (default: unbounded)",
        )
        subparser.add_argument(
            "--shed-after",
            type=float,
            default=None,
            metavar="MS",
            help="shed (Overloaded) instead of queueing when the global "
            "in-flight gate stays saturated this long "
            "(default: queue indefinitely)",
        )
        subparser.add_argument(
            "--log-format",
            choices=("text", "json"),
            default="text",
            help="request logging: 'json' emits one structured JSON "
            "line per request to stderr (peer, op, fingerprint, "
            "outcome, stage timings, retry hints); 'text' (default) "
            "keeps request logging off",
        )

    add_serving_options(serve)
    add_limits(serve)
    add_cache_dir(serve)

    supervise = commands.add_parser(
        "supervise",
        help="run the serve loop in a supervised child process: "
        "health-check watchdog, crash restarts with jittered "
        "exponential backoff, crash-loop breaker",
    )
    supervise.add_argument(
        "schema",
        nargs="?",
        default=None,
        help="path to the default JSON schema (optional: requests may "
        "each carry an inline schema)",
    )
    def add_worker_options(subparser: argparse.ArgumentParser) -> None:
        """Flags shared by the process-spawning commands (`supervise`,
        `fleet`): the worker's serving shape plus restart policy."""
        subparser.add_argument(
            "--pool-size", type=int, default=DEFAULT_POOL_SIZE
        )
        subparser.add_argument(
            "--max-fingerprints",
            type=int,
            default=DEFAULT_MAX_FINGERPRINTS,
        )
        subparser.add_argument(
            "--max-pending", type=int, default=DEFAULT_MAX_PENDING
        )
        subparser.add_argument(
            "--warm",
            default=None,
            metavar="MANIFEST",
            help="fingerprint warmup manifest or precompiled bundle "
            "each worker loads before reporting ready (and, in a "
            "fleet, before joining the ring)",
        )
        add_cache_dir(subparser)
        subparser.add_argument(
            "--max-crashes",
            type=int,
            default=5,
            help="crash-loop breaker: crashes tolerated inside the "
            "window before giving up (default: 5)",
        )
        subparser.add_argument(
            "--crash-window",
            type=float,
            default=30.0,
            metavar="SECONDS",
            help="crash-loop breaker window (default: 30)",
        )
        subparser.add_argument(
            "--backoff-base",
            type=float,
            default=0.1,
            metavar="SECONDS",
            help="restart backoff base delay (default: 0.1)",
        )
        subparser.add_argument(
            "--backoff-cap",
            type=float,
            default=5.0,
            metavar="SECONDS",
            help="restart backoff delay cap (default: 5)",
        )
        subparser.add_argument(
            "--health-interval",
            type=float,
            default=1.0,
            metavar="SECONDS",
            help="seconds between op:ping health probes (default: 1)",
        )

    supervise.add_argument(
        "--workers", type=int, default=DEFAULT_WORKERS
    )
    supervise.add_argument("--host", default="127.0.0.1")
    supervise.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port for the worker (default: {DEFAULT_PORT}; 0 "
        "for ephemeral — the watchdog follows the bound port "
        "discovered from the worker's readiness line)",
    )
    add_worker_options(supervise)
    add_serving_options(supervise)
    add_limits(supervise)

    fleet = commands.add_parser(
        "fleet",
        help="prefork worker fleet: N supervised serve processes on "
        "ephemeral ports behind a consistent-hashing dispatcher that "
        "routes by schema fingerprint, fails worker loss over as "
        "typed retryable errors, and rebalances the ring on "
        "death/restart",
    )
    fleet.add_argument(
        "schema",
        nargs="?",
        default=None,
        help="path to the default JSON schema (optional: requests may "
        "each carry an inline schema)",
    )
    fleet.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes behind the dispatcher (default: 2)",
    )
    fleet.add_argument(
        "--worker-threads",
        type=int,
        default=DEFAULT_WORKERS,
        help="decision threads inside each worker process "
        f"(default: {DEFAULT_WORKERS})",
    )
    fleet.add_argument(
        "--channels-per-worker",
        type=int,
        default=None,
        help="dispatcher connections per worker (default: the "
        "worker's thread count, so one worker's threads can all stay "
        "busy)",
    )
    fleet.add_argument(
        "--host", default="127.0.0.1", help="dispatcher bind address"
    )
    fleet.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help="dispatcher TCP port, 0 for ephemeral (default: "
        f"{DEFAULT_PORT}); workers always bind ephemeral ports, "
        "discovered from their readiness lines",
    )
    add_worker_options(fleet)
    add_serving_options(fleet)
    add_limits(fleet)

    simplify = commands.add_parser(
        "simplify", help="print a simplified schema"
    )
    simplify.add_argument("schema")
    simplify.add_argument(
        "kind", choices=["existence-check", "fd", "choice"]
    )

    classify = commands.add_parser(
        "classify", help="detect the constraint fragment"
    )
    classify.add_argument("schema")
    classify.add_argument(
        "--json",
        action="store_true",
        help="emit the classification as JSON instead of text",
    )
    return parser


def _open_store(args: argparse.Namespace):
    """The durable `ArtifactStore` behind ``--cache-dir`` (None when
    the flag is unset).  An unusable cache directory degrades to cold
    operation with a stderr warning — persistence is an accelerant,
    never a liveness dependency."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        return None
    from .cache import CacheError, open_directory

    try:
        return open_directory(cache_dir)
    except CacheError as error:
        print(
            f"warning: cache disabled: {error}",
            file=sys.stderr,
            flush=True,
        )
        return None


def _session(args: argparse.Namespace) -> Session:
    return Session(
        load_schema(args.schema),
        max_rounds=args.max_rounds,
        max_facts=args.max_facts,
        max_disjuncts=args.max_disjuncts,
        subsumption=not args.no_subsumption,
        chase_parallelism=args.chase_parallelism,
        store=_open_store(args),
    )


def _close_store(owner) -> None:
    store = getattr(owner, "store", None)
    if store is not None:
        store.close()


def _cmd_decide(args: argparse.Namespace) -> int:
    session = _session(args)
    try:
        response = session.decide(
            load_query(args.query), finite=args.finite
        )
    finally:
        _close_store(session)
    if args.json:
        print(json.dumps(response.to_dict()))
    else:
        print(f"query     : {response.query}")
        print(f"fragment  : {response.constraint_class}")
        print(f"route     : {response.route}")
        print(f"decision  : {response.decision.upper()}")
        print(f"reason    : {response.reason}")
        if response.error is not None:
            print(f"error     : {json.dumps(response.error)}")
    return response.exit_code


def _cmd_plan(args: argparse.Namespace) -> int:
    session = _session(args)
    try:
        response = session.plan(load_query(args.query))
    finally:
        _close_store(session)
    if args.json:
        print(json.dumps(response.to_dict()))
        return 0 if response.answerable else 1
    if not response.answerable:
        print("no plan: the query is not (provably) monotone answerable")
        return 1
    print(response.plan)
    return 0


def _limits(args: argparse.Namespace) -> SessionLimits:
    return SessionLimits(
        max_rounds=args.max_rounds,
        max_facts=args.max_facts,
        max_disjuncts=args.max_disjuncts,
        subsumption=not args.no_subsumption,
        chase_parallelism=getattr(args, "chase_parallelism", 0),
        deadline_ms=getattr(args, "request_deadline", None),
    )


def _pool(args: argparse.Namespace, *, pool_size: int) -> SessionPool:
    schema = getattr(args, "schema", None)
    return SessionPool(
        load_schema(schema) if schema is not None else None,
        limits=_limits(args),
        pool_size=pool_size,
        max_fingerprints=getattr(
            args, "max_fingerprints", DEFAULT_MAX_FINGERPRINTS
        ),
        store=_open_store(args),
    )


def _cmd_batch(args: argparse.Namespace) -> int:
    # One session per fingerprint: a serial stream gains nothing from
    # round-robin, and a single decision cache keeps repeat lines hits.
    pool = _pool(args, pool_size=1)
    if args.input == "-":
        lines = sys.stdin
    else:
        lines = open(args.input)
    failures = 0
    try:
        for line in lines:
            line = line.strip()
            if not line:
                continue
            request = None
            try:
                request = DecideRequest.from_dict(json.loads(line))
                if request.op in ("ping", "stats", "metrics"):
                    frame = introspection_frame(request, pool)
                else:
                    frame = pool.process(request).to_dict()
                print(json.dumps(frame, sort_keys=True), flush=True)
            except Exception as error:  # keep the stream going
                failures += 1
                report = ErrorFrame.from_exception(
                    error,
                    id=request.id if request is not None else None,
                    line=line,
                )
                print(json.dumps(report.to_dict()), flush=True)
    finally:
        if lines is not sys.stdin:
            lines.close()
    if args.stats:
        print(
            json.dumps(json_safe(pool.stats()), sort_keys=True),
            file=sys.stderr,
            flush=True,
        )
    _close_store(pool)
    return 1 if failures else 0


def _warm_pool(
    pool: SessionPool, manifest: str | None
) -> tuple[int, str | None]:
    """Precompile the warm set into the pool: the ``--warm`` manifest
    or bundle (when given) plus whatever warm set a bound durable
    store remembers from previous runs.  Returns ``(warmed count,
    typed error text or None)`` — a bad warm source degrades to cold
    serving with the error surfaced on the readiness frame, it does
    not kill the worker."""
    from .cache import WarmupError, load_warm_source

    warmed = 0
    warm_error: str | None = None
    if manifest is not None:
        try:
            descriptions = load_warm_source(manifest)
        except WarmupError as error:
            warm_error = str(error)
        else:
            warmed += len(pool.warm_many(descriptions))
    if pool.store is not None:
        warmed += pool.warm_from_store()
    return warmed, warm_error


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os
    import signal

    pool = _pool(args, pool_size=args.pool_size)
    warmed, warm_error = _warm_pool(pool, getattr(args, "warm", None))
    if warm_error is not None:
        print(
            f"warning: warmup failed, serving cold: {warm_error}",
            file=sys.stderr,
            flush=True,
        )

    from .obs import MetricsRegistry, request_logger_from_format

    async def serve() -> None:
        server = DecideServer(
            pool,
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_pending=args.max_pending,
            client_rate=args.client_rate,
            client_burst=args.client_burst,
            max_inflight_per_client=args.max_inflight_per_client,
            shed_after_ms=args.shed_after,
            metrics=MetricsRegistry(),
            request_log=request_logger_from_format(
                getattr(args, "log_format", None)
            ),
        )
        await server.start()
        host, port = server.address
        # SIGTERM/SIGINT trigger a graceful drain: stop accepting,
        # finish (or deadline-cancel) in-flight work, flush responses,
        # exit 0 — bounded by --drain-timeout.  Handlers are installed
        # *before* the banner: the banner is the readiness signal, and
        # a SIGTERM sent the instant it appears must already drain.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        hooked = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                hooked.append(signum)
            except (NotImplementedError, RuntimeError):
                pass  # non-Unix loop: fall back to KeyboardInterrupt
        print(
            f"serving on {host}:{port} "
            f"(workers={args.workers}, pool_size={args.pool_size}, "
            f"max_pending={args.max_pending}; Ctrl-C to stop)",
            file=sys.stderr,
            flush=True,
        )
        # The machine channel: one ReadyFrame JSON line on *stdout*
        # (the banner above is for humans).  Supervisors and the fleet
        # dispatcher parse this to discover ephemeral ports and pids.
        print(
            json.dumps(
                ReadyFrame(
                    host=host,
                    port=port,
                    pid=os.getpid(),
                    warmed=warmed,
                    warm_error=warm_error,
                ).to_dict()
            ),
            flush=True,
        )
        forever = asyncio.ensure_future(server.serve_forever())
        stopped = asyncio.ensure_future(stop.wait())
        try:
            await asyncio.wait(
                {forever, stopped}, return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            for signum in hooked:
                loop.remove_signal_handler(signum)
            stopped.cancel()
            forever.cancel()
            print(
                f"draining (timeout {args.drain_timeout:g}s)",
                file=sys.stderr,
                flush=True,
            )
            await server.close(drain_timeout=args.drain_timeout)
            _close_store(pool)
            print("shutdown complete", file=sys.stderr, flush=True)

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr, flush=True)
    return 0


def _worker_serve_args(
    args: argparse.Namespace, *, threads: int
) -> tuple:
    """The ``serve`` CLI flags a child worker inherits from a parsed
    ``supervise``/``fleet`` namespace (everything except schema, bind
    address, and warm manifest — those live on the `WorkerSpec`
    proper)."""
    argv: list = []
    argv += ["--workers", str(threads)]
    argv += ["--pool-size", str(args.pool_size)]
    argv += ["--max-fingerprints", str(args.max_fingerprints)]
    argv += ["--max-pending", str(args.max_pending)]
    argv += ["--max-rounds", str(args.max_rounds)]
    argv += ["--max-facts", str(args.max_facts)]
    argv += ["--max-disjuncts", str(args.max_disjuncts)]
    if args.no_subsumption:
        argv.append("--no-subsumption")
    argv += ["--chase-parallelism", str(args.chase_parallelism)]
    argv += ["--drain-timeout", str(args.drain_timeout)]
    if args.request_deadline is not None:
        argv += ["--request-deadline", str(args.request_deadline)]
    if args.client_rate is not None:
        argv += ["--client-rate", str(args.client_rate)]
    argv += ["--client-burst", str(args.client_burst)]
    if args.max_inflight_per_client is not None:
        argv += [
            "--max-inflight-per-client",
            str(args.max_inflight_per_client),
        ]
    if args.shed_after is not None:
        argv += ["--shed-after", str(args.shed_after)]
    if getattr(args, "log_format", "text") != "text":
        argv += ["--log-format", args.log_format]
    if getattr(args, "cache_dir", None) is not None:
        argv += ["--cache-dir", str(args.cache_dir)]
    return tuple(argv)


def _worker_spec(
    args: argparse.Namespace,
    *,
    threads: int,
    host: str | None = None,
    port: int | None = None,
):
    """Build the `WorkerSpec` shared by ``supervise`` and ``fleet`` —
    one code path for spawn argv, health policy, and restart policy."""
    from .server import BackoffPolicy, BreakerPolicy, WorkerSpec

    return WorkerSpec(
        schema=args.schema,
        host=args.host if host is None else host,
        port=args.port if port is None else port,
        serve_args=_worker_serve_args(args, threads=threads),
        warm=getattr(args, "warm", None),
        health_interval_s=args.health_interval,
        backoff=BackoffPolicy(
            base_s=args.backoff_base, cap_s=args.backoff_cap
        ),
        breaker=BreakerPolicy(
            max_crashes=args.max_crashes, window_s=args.crash_window
        ),
    )


def _cmd_supervise(args: argparse.Namespace) -> int:
    from .server import CrashLoopError

    spec = _worker_spec(args, threads=args.workers)
    supervisor = spec.supervisor()
    where = (
        f"{args.host}:{args.port}"
        if args.port
        else f"{args.host}:<ephemeral>"
    )
    print(
        f"supervising serve worker on {where} "
        f"(breaker: {args.max_crashes} crashes/{args.crash_window:g}s)",
        file=sys.stderr,
        flush=True,
    )
    # SIGTERM stops supervision gracefully: run()'s cleanup SIGTERMs
    # the worker (which drains) and only then returns.
    import signal

    previous = None
    try:
        previous = signal.signal(
            signal.SIGTERM, lambda *_: supervisor.stop()
        )
    except (ValueError, OSError):
        previous = None  # non-main thread / platform without SIGTERM
    try:
        supervisor.run()
    except KeyboardInterrupt:
        # run()'s cleanup already drained the worker (SIGTERM, then
        # kill after the grace period).
        supervisor.stop()
        print("supervisor stopped", file=sys.stderr, flush=True)
        return 0
    except CrashLoopError as error:
        print(f"crash loop: {error}", file=sys.stderr, flush=True)
        return 1
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import asyncio
    import os
    import signal

    from .server import Fleet, FleetDispatcher

    workers = max(1, args.workers)
    channels = args.channels_per_worker or args.worker_threads
    # Workers always bind loopback ephemeral ports and announce them
    # via the readiness handshake; --host/--port are the *dispatcher*.
    specs = [
        _worker_spec(
            args, threads=args.worker_threads, host="127.0.0.1", port=0
        )
        for __ in range(workers)
    ]

    from .obs import MetricsRegistry, request_logger_from_format

    async def serve() -> None:
        dispatcher = FleetDispatcher(
            host=args.host, port=args.port, channels_per_worker=channels
        )
        dispatcher.register_metrics(MetricsRegistry())
        dispatcher.set_request_log(
            request_logger_from_format(getattr(args, "log_format", None))
        )
        await dispatcher.start()
        fleet = Fleet(specs, dispatcher)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        hooked = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop.set)
                hooked.append(signum)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            admitted = await fleet.start()
            host, port = dispatcher.address
            print(
                f"fleet dispatcher on {host}:{port} "
                f"({admitted}/{workers} workers in ring, "
                f"{args.worker_threads} threads each; Ctrl-C to stop)",
                file=sys.stderr,
                flush=True,
            )
            print(
                json.dumps(
                    ReadyFrame(
                        host=host,
                        port=port,
                        pid=os.getpid(),
                        role="fleet",
                        workers=admitted,
                    ).to_dict()
                ),
                flush=True,
            )
            forever = asyncio.ensure_future(dispatcher.serve_forever())
            stopped = asyncio.ensure_future(stop.wait())
            try:
                await asyncio.wait(
                    {forever, stopped},
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                stopped.cancel()
                forever.cancel()
        finally:
            for signum in hooked:
                loop.remove_signal_handler(signum)
            print(
                f"draining fleet (timeout {args.drain_timeout:g}s)",
                file=sys.stderr,
                flush=True,
            )
            await fleet.close(drain_timeout=args.drain_timeout)
            print("fleet shutdown complete", file=sys.stderr, flush=True)

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr, flush=True)
    except RuntimeError as error:
        print(f"fleet failed: {error}", file=sys.stderr, flush=True)
        return 1
    return 0


def _cmd_simplify(args: argparse.Namespace) -> int:
    schema = load_schema(args.schema)
    transform = {
        "existence-check": existence_check_simplification,
        "fd": fd_simplification,
        "choice": choice_simplification,
    }[args.kind]
    result = transform(schema)
    print(json.dumps(schema_to_dict(result.schema), indent=2))
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    compiled = compile_schema(load_schema(args.schema))
    if args.json:
        schema = compiled.schema
        print(
            json.dumps(
                {
                    "fingerprint": compiled.fingerprint,
                    "constraint_class": compiled.constraint_class.value,
                    "result_bounded_methods": [
                        m.name for m in compiled.result_bounded_methods
                    ],
                    "relations": len(schema.relations),
                    "methods": len(schema.methods),
                    "constraints": len(schema.constraints),
                }
            )
        )
        return 0
    print(f"fragment      : {compiled.constraint_class.value}")
    print(
        "result bounds : "
        f"{len(compiled.result_bounded_methods)} methods"
    )
    print(f"fingerprint   : {compiled.fingerprint[:16]}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "decide": _cmd_decide,
        "plan": _cmd_plan,
        "batch": _cmd_batch,
        "serve": _cmd_serve,
        "supervise": _cmd_supervise,
        "fleet": _cmd_fleet,
        "simplify": _cmd_simplify,
        "classify": _cmd_classify,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
