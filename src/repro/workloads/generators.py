"""Seeded workload generators for tests and benchmarks.

Each family is parameterized and carries *known ground truth* about
monotone answerability, so the benchmarks can both validate the deciders
(reproducing Table 1's simplifiability/decidability claims) and measure
their scaling (reproducing the complexity shape of each row):

* `lookup_chain_workload` — the Example 1.2/1.3 pattern scaled: a
  directory dump plus n by-id lookup relations under IDs; answerable
  exactly when the dump is unbounded;
* `id_width_workload` — IDs of growing width w (the EXPTIME dimension of
  Thm 5.3 vs the NP dimension of Thm 5.4);
* `fd_determinacy_workload` — the Example 1.5 pattern scaled: a bound-1
  lookup with m determined and one undetermined column;
* `uid_fd_workload` — mixed UIDs + FDs (Thm 7.2);
* `tgd_transfer_workload` — Example 6.1 scaled to n parallel sources
  (choice simplification, Thm 6.3/7.1);
* `directory_instance` — data for plan-execution benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..constraints.fd import fd
from ..constraints.tgd import inclusion_dependency, tgd
from ..data.instance import Instance
from ..logic.atoms import Atom, atom
from ..logic.queries import ConjunctiveQuery, boolean_cq
from ..logic.terms import Constant
from ..schema.schema import Schema


@dataclass
class Workload:
    """A schema + query pair with its known answerability status."""

    name: str
    schema: Schema
    query: ConjunctiveQuery
    expected_answerable: Optional[bool] = None
    notes: str = ""


def lookup_chain_workload(
    lookups: int,
    *,
    dump_bound: Optional[int] = None,
    query_length: Optional[int] = None,
) -> Workload:
    """Directory + n lookup relations joined on id, under IDs.

    ``Dir(id)`` has an input-free method with optional result bound;
    each ``L_i(id, payload)`` has an exact by-id method and the ID
    ``L_i[0] ⊆ Dir[0]``.  The query joins the first ``query_length``
    lookups on a shared id.  Ground truth: answerable iff the dump is
    unbounded (with a bound, matching tuples can be hidden) — except the
    trivial length-0 query.
    """
    if query_length is None:
        query_length = lookups
    schema = Schema()
    schema.add_relation("Dir", 1)
    schema.add_method("dump", "Dir", inputs=[], result_bound=dump_bound)
    for i in range(lookups):
        name = f"L{i}"
        schema.add_relation(name, 2)
        schema.add_method(f"by_id_{i}", name, inputs=[0])
        schema.add_constraint(
            inclusion_dependency(name, (0,), "Dir", (0,), 2, 1)
        )
    atoms = [atom(f"L{i}", "x", f"y{i}") for i in range(query_length)]
    if not atoms:
        atoms = [atom("Dir", "x")]
    query = boolean_cq(atoms, name=f"Qchain{query_length}")
    expected = dump_bound is None or query_length == 0
    return Workload(
        f"lookup-chain-{lookups}-bound{dump_bound}",
        schema,
        query,
        expected,
        "Example 1.2/1.3 scaled",
    )


def id_chain_workload(depth: int, *, query_index: Optional[int] = None) -> Workload:
    """A linear ID chain R_0 ⊆ R_1 ⊆ ... ⊆ R_depth, top-dumped.

    ``R_depth`` has an unbounded input-free dump; every ``R_i`` has an
    exact membership check keyed on its single column.  The query asks
    ``R_i(x)`` (default: the bottom of the chain).  Ground truth: YES —
    any R_i value reaches R_depth through the chain, so the dump
    surfaces it and the membership check confirms it.

    The interesting property for the rewriting engine: the backward
    rewritings of the queries ``R_0(x) .. R_depth(x)`` are *nested* —
    query i's frontier is a subset of query i+1's — so a distinct-query
    batch over one schema is the worst case for per-query rewriting and
    the best case for cross-query frontier memoization.
    """
    if query_index is None:
        query_index = 0
    schema = Schema()
    for i in range(depth + 1):
        name = f"R{i}"
        schema.add_relation(name, 1)
        schema.add_method(f"check_{i}", name, inputs=[0])
        if i:
            schema.add_constraint(
                inclusion_dependency(f"R{i - 1}", (0,), name, (0,), 1, 1)
            )
    schema.add_method("dump", f"R{depth}", inputs=[])
    query = boolean_cq([atom(f"R{query_index}", "x")], name=f"Qlink{query_index}")
    return Workload(
        f"id-chain-{depth}",
        schema,
        query,
        True,
        "nested-rewriting family (cross-query reuse stress)",
    )


def id_width_workload(width: int, *, bounded: bool = True) -> Workload:
    """A width-w ID feeding a bounded dump — scales the width dimension.

    ``A`` (arity w) has an input-free dump (bounded or not); the ID
    ``A[0..w-1] ⊆ B[0..w-1]`` promises a B-fact per A-fact; ``B``
    (arity w+1) has a method keyed on the first w positions.  The query
    asks for a joined A,B pair: answerable — the dump provides *one* A
    tuple... with a bound the existence check still answers ∃A∧B since
    any returned A-tuple has a B-partner?  No: the query requires a
    *join*, and any single returned A-tuple joined with its B-partner
    witnesses it; conversely if Q holds, A is nonempty, so the access
    returns some A-tuple whose B-partner exists by the ID.  Answerable
    either way — the benchmark measures decision cost as w grows.
    """
    schema = Schema()
    schema.add_relation("A", width)
    schema.add_relation("B", width + 1)
    schema.add_method(
        "dumpA", "A", inputs=[], result_bound=5 if bounded else None
    )
    schema.add_method("getB", "B", inputs=list(range(width)))
    schema.add_constraint(
        inclusion_dependency(
            "A",
            tuple(range(width)),
            "B",
            tuple(range(width)),
            width,
            width + 1,
        )
    )
    variables = [f"x{i}" for i in range(width)]
    query = boolean_cq(
        [atom("A", *variables), atom("B", *(variables + ["z"]))],
        name=f"Qwidth{width}",
    )
    return Workload(
        f"id-width-{width}-{'bounded' if bounded else 'exact'}",
        schema,
        query,
        True,
        "width-scaling family (Thm 5.3 vs 5.4)",
    )


def fd_determinacy_workload(
    determined: int,
    *,
    bound: int = 1,
    ask_undetermined: bool = False,
) -> Workload:
    """Example 1.5 scaled: R(key, d1..dm, extra), FDs key → d_i.

    The by-key method has a result bound; queries about the determined
    columns are answerable, queries touching the extra column are not.
    """
    arity = determined + 2
    schema = Schema()
    schema.add_relation("R", arity)
    schema.add_method("by_key", "R", inputs=[0], result_bound=bound)
    for i in range(determined):
        schema.add_constraint(fd("R", [0], i + 1))
    terms: list = [Constant("k")]
    terms.extend(Constant(f"d{i}") for i in range(determined))
    if ask_undetermined:
        terms.append(Constant("extra"))
    else:
        terms.append(f"free_extra")
    query = boolean_cq([atom("R", *terms)], name="Qfd")
    return Workload(
        f"fd-det-{determined}-bound{bound}"
        + ("-undet" if ask_undetermined else ""),
        schema,
        query,
        not ask_undetermined,
        "Example 1.5 scaled",
    )


def uid_fd_workload(
    departments: int, *, with_fd: bool = True, bound: int = 10
) -> Workload:
    """University-style UIDs + FDs with n department relations.

    ``Person(id, dept)`` has a bound-`bound` by-id method and the FD
    id → dept; each ``Dept_i(id)`` has a Boolean method with the UID
    ``Person[1] ⊆ Dept_0[0]``-style links.  Query: is the person with a
    known id in department 'd0'?  Answerable with the FD (the returned
    tuple's dept column is trustworthy), not without.
    """
    schema = Schema()
    schema.add_relation("Person", 2)
    schema.add_method("by_id", "Person", inputs=[0], result_bound=bound)
    if with_fd:
        schema.add_constraint(fd("Person", [0], 1))
    for i in range(departments):
        name = f"Dept{i}"
        schema.add_relation(name, 1)
        schema.add_method(f"in_dept_{i}", name, inputs=[0])
        schema.add_constraint(
            inclusion_dependency("Person", (1,), name, (0,), 2, 1)
        )
    query = boolean_cq(
        [atom("Person", Constant(7), Constant("d0"))], name="Quidfd"
    )
    return Workload(
        f"uid-fd-{departments}-{'fd' if with_fd else 'nofd'}",
        schema,
        query,
        with_fd,
        "Thm 7.2 family",
    )


def tgd_transfer_workload(sources: int) -> Workload:
    """Example 6.1 scaled to n parallel bound-1 sources.

    Constraints ``T(y) ∧ S_i(x) → T(x)`` and ``T(y) → ∃x S_i(x)``;
    methods: bound-1 input-free on each S_i, Boolean on T.  The query
    ∃y T(y) is answerable (access any S_i, check membership in T).
    """
    schema = Schema()
    schema.add_relation("T", 1)
    schema.add_method("chkT", "T", inputs=[0])
    for i in range(sources):
        name = f"S{i}"
        schema.add_relation(name, 1)
        schema.add_method(f"getS{i}", name, inputs=[], result_bound=1)
        schema.add_constraint(tgd(f"T(y), {name}(x) -> T(x)"))
        schema.add_constraint(tgd(f"T(y) -> {name}(x)"))
    query = boolean_cq([atom("T", "y")], name="Qtgd")
    return Workload(
        f"tgd-transfer-{sources}",
        schema,
        query,
        True,
        "Example 6.1 scaled",
    )


def random_id_workload(
    seed: int,
    *,
    relations: int = 5,
    arity: int = 2,
    ids: int = 6,
    methods: int = 4,
    bound: Optional[int] = 5,
) -> Workload:
    """A random ID schema + random path query (no ground truth).

    Used by cross-validation benchmarks: the linearization and chase
    routes must agree whenever the chase is definitive.
    """
    rng = random.Random(seed)
    schema = Schema()
    names = [f"N{i}" for i in range(relations)]
    for name in names:
        schema.add_relation(name, arity)
    for i in range(ids):
        src, dst = rng.sample(names, 2)
        src_pos = rng.randrange(arity)
        dst_pos = rng.randrange(arity)
        schema.add_constraint(
            inclusion_dependency(
                src, (src_pos,), dst, (dst_pos,), arity, arity
            )
        )
    for i in range(methods):
        relation = rng.choice(names)
        input_free = rng.random() < 0.4
        inputs = [] if input_free else [rng.randrange(arity)]
        schema.add_method(
            f"m{i}",
            relation,
            inputs=inputs,
            result_bound=bound if rng.random() < 0.5 else None,
        )
    length = rng.randint(1, 3)
    atoms_list: list[Atom] = []
    var = "x0"
    for i in range(length):
        relation = rng.choice(names)
        nxt = f"x{i + 1}"
        atoms_list.append(atom(relation, var, nxt))
        var = nxt
    query = boolean_cq(atoms_list, name=f"Qrand{seed}")
    return Workload(f"random-ids-{seed}", schema, query, None, "random")


def directory_instance(
    people: int, *, seed: int = 0, lookups: int = 1
) -> Instance:
    """Data for the lookup-chain schemas (plan-execution benchmarks)."""
    rng = random.Random(seed)
    instance = Instance()
    for person in range(people):
        instance.add(Atom("Dir", (Constant(person),)))
        for i in range(lookups):
            instance.add(
                Atom(
                    f"L{i}",
                    (Constant(person), Constant(rng.randrange(10))),
                )
            )
    return instance
