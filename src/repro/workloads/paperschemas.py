"""The paper's worked examples as ready-made schemas, queries, and data.

Each function returns fresh objects so tests can mutate them freely:

* `university_schema` — Examples 1.1–1.5 and 2.1/3.5: relations
  ``Prof(id, name, salary)`` and ``Udirectory(id, address, phone)``,
  methods ``pr`` (Prof by id), ``ud`` (input-free on Udirectory, result
  bound 100 as in Ex 1.3), ``ud2`` (Udirectory by id, result bound 1 as
  in Ex 1.5), the referential ID τ of Ex 1.1, and the FD φ of Ex 1.5.
* `example_6_1_schema` — the TGD schema showing existence-check/FD
  simplification insufficient beyond IDs.
* `example_8_1_story` — the FO-constraint limit of choice simplification
  (constraints not expressible as dependencies; returned as instances +
  a checker, used by the semantic tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..constraints.fd import fd
from ..constraints.tgd import tgd
from ..data.instance import Instance
from ..logic.atoms import atom
from ..logic.queries import ConjunctiveQuery, boolean_cq, cq
from ..logic.terms import Constant, Variable
from ..schema.schema import Schema


def university_schema(
    *,
    ud_bound: int | None = 100,
    with_ud2: bool = False,
    with_fd: bool = False,
) -> Schema:
    """The university schema of Examples 1.1–1.5.

    ``ud_bound`` is the result bound of the input-free directory dump
    (None for the unbounded variant of Ex 1.1/1.2).  ``with_ud2`` adds the
    by-id method with result bound 1 (Ex 1.5); ``with_fd`` adds the FD
    ``id → address`` on Udirectory (Ex 1.5).
    """
    schema = Schema()
    schema.add_relation("Prof", 3, attributes=("id", "name", "salary"))
    schema.add_relation(
        "Udirectory", 3, attributes=("id", "address", "phone")
    )
    schema.add_method("pr", "Prof", inputs=[0])
    schema.add_method("ud", "Udirectory", inputs=[], result_bound=ud_bound)
    if with_ud2:
        schema.add_method("ud2", "Udirectory", inputs=[0], result_bound=1)
    # τ of Ex 1.1: every Prof id appears in Udirectory.
    schema.add_constraint(
        tgd("Prof(i, n, s) -> Udirectory(i, a, p)", name="tau")
    )
    if with_fd:
        # φ of Ex 1.5: each employee id has exactly one address.
        schema.add_constraint(fd("Udirectory", [0], 1, name="phi"))
    return schema


def query_q1() -> ConjunctiveQuery:
    """Q1(n): ∃i Prof(i, n, 10000) — names of professors earning 10000."""
    n = Variable("n")
    return cq(
        [atom("Prof", "i", "n", Constant(10000))], free=[n], name="Q1"
    )


def query_q1_boolean() -> ConjunctiveQuery:
    """The Boolean version of Q1 (the paper works with Boolean CQs)."""
    return boolean_cq(
        [atom("Prof", "i", "n", Constant(10000))], name="Q1b"
    )


def query_q2() -> ConjunctiveQuery:
    """Q2: ∃i,a,p Udirectory(i, a, p) — is anyone in the directory?"""
    return boolean_cq([atom("Udirectory", "i", "a", "p")], name="Q2")


def query_q3(employee_id: int = 12345) -> ConjunctiveQuery:
    """Q3(a): address of the employee with the given id (Ex 1.5)."""
    a = Variable("a")
    return cq(
        [atom("Udirectory", Constant(employee_id), "a", "p")],
        free=[a],
        name="Q3",
    )


def query_q3_boolean(employee_id: int = 12345) -> ConjunctiveQuery:
    return boolean_cq(
        [atom("Udirectory", Constant(employee_id), "a", "p")], name="Q3b"
    )


def university_instance(employees: int = 5, salary_every: int = 2) -> Instance:
    """A directory of `employees` people; every `salary_every`-th one is a
    professor with salary 10000, the rest earn 20000."""
    instance = Instance()
    for i in range(employees):
        instance.add(
            atom(
                "Udirectory",
                Constant(i),
                Constant(f"addr{i}"),
                Constant(f"phone{i}"),
            )
        )
        salary = 10000 if i % salary_every == 0 else 20000
        instance.add(
            atom("Prof", Constant(i), Constant(f"name{i}"), Constant(salary))
        )
    return instance


def example_6_1_schema() -> Schema:
    """The schema of Example 6.1: TGDs where only *choice* simplification
    works.

    Constraints: ``T(y) ∧ S(x) → T(x)`` and ``T(y) → ∃x S(x)``.  Methods:
    input-free ``mtS`` on S with result bound 1, Boolean ``mtT`` on T.
    """
    schema = Schema()
    schema.add_relation("S", 1)
    schema.add_relation("T", 1)
    schema.add_method("mtS", "S", inputs=[], result_bound=1)
    schema.add_method("mtT", "T", inputs=[0])
    schema.add_constraint(tgd("T(y), S(x) -> T(x)"))
    schema.add_constraint(tgd("T(y) -> S(x)"))
    return schema


def query_example_6_1() -> ConjunctiveQuery:
    """Q = ∃y T(y)."""
    return boolean_cq([atom("T", "y")], name="Q61")


@dataclass
class Example81Story:
    """Example 8.1 packaged for the semantic layer.

    The constraints ("P has exactly 7 tuples; if one of them is in U then
    4 of them are") are first-order with counting — not dependencies — so
    they are provided as a Python checker over instances.
    """

    schema: Schema
    query: ConjunctiveQuery
    constraint_checker: Callable[[Instance], bool]


def example_8_1_story() -> Example81Story:
    schema = Schema()
    schema.add_relation("P", 1)
    schema.add_relation("U", 1)
    schema.add_method("mtP", "P", inputs=[], result_bound=5)
    schema.add_method("mtU", "U", inputs=[])
    query = boolean_cq([atom("P", "x"), atom("U", "x")], name="Q81")

    def checker(instance: Instance) -> bool:
        p_values = {f.terms[0] for f in instance.facts_of("P")}
        u_values = {f.terms[0] for f in instance.facts_of("U")}
        if len(p_values) != 7:
            return False
        overlap = len(p_values & u_values)
        return overlap == 0 or overlap >= 4

    return Example81Story(schema, query, checker)
