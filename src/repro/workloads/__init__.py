"""Workloads: paper examples, random generators, simulated services."""

from .generators import (
    Workload,
    directory_instance,
    fd_determinacy_workload,
    id_chain_workload,
    id_width_workload,
    lookup_chain_workload,
    random_id_workload,
    tgd_transfer_workload,
    uid_fd_workload,
)
from .webservices import (
    RateLimitExceeded,
    ServiceSelection,
    WebService,
    chemistry_service,
    movie_service,
)

from .paperschemas import (
    example_6_1_schema,
    example_8_1_story,
    query_example_6_1,
    query_q1,
    query_q1_boolean,
    query_q2,
    query_q3,
    query_q3_boolean,
    university_instance,
    university_schema,
)

__all__ = [
    "Workload", "directory_instance", "fd_determinacy_workload",
    "id_chain_workload", "id_width_workload",
    "lookup_chain_workload", "random_id_workload",
    "tgd_transfer_workload", "uid_fd_workload",
    "RateLimitExceeded", "ServiceSelection", "WebService",
    "chemistry_service", "movie_service",
    "example_6_1_schema", "example_8_1_story", "query_example_6_1",
    "query_q1", "query_q1_boolean", "query_q2", "query_q3",
    "query_q3_boolean", "university_instance", "university_schema",
]
