"""Simulated result-bounded Web services.

The paper motivates result bounds with real services: ChEBI caps lookup
methods at 5000 entries, IMDb's listings stop at 10000, and rate-limited
APIs (GitHub, Twitter, Facebook) bound the obtainable results.  This
module provides a faithful *simulation substrate*: a `WebService` wraps
an instance with per-method result bounds, an optional call budget (rate
limit), call accounting, and a pluggable selection policy deciding
*which* tuples are returned when a bound truncates the result — so that
examples and benchmarks exercise exactly the access semantics of §2.

The service integrates with the rest of the library through
`service_selection`, an `AccessSelection` that answers from the service
(so plans and universal plans can run against it unchanged).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..accessibility.access import (
    AccessRequest,
    AccessSelection,
    matching_tuples,
    required_output_size,
)
from ..data.instance import Instance
from ..logic.atoms import Atom
from ..logic.terms import Constant, GroundTerm
from ..schema.schema import Schema


class RateLimitExceeded(RuntimeError):
    """The service's call budget is exhausted (cf. paper refs [27,30,43])."""


@dataclass
class CallLogEntry:
    method: str
    binding: tuple[GroundTerm, ...]
    returned: int
    truncated: bool


class WebService:
    """An instance-backed service enforcing result bounds and rate limits.

    Parameters
    ----------
    schema:
        The service schema (methods carry the result bounds).
    data:
        The underlying instance — what the provider's database holds.
    policy:
        ``"first"`` (deterministic canonical prefix), ``"random"``
        (seeded shuffle per access), or ``"adversarial"`` (canonical
        suffix) — which tuples survive truncation.
    rate_limit:
        Optional cap on the number of accesses before
        `RateLimitExceeded`.
    """

    def __init__(
        self,
        schema: Schema,
        data: Instance,
        *,
        policy: str = "first",
        seed: int = 0,
        rate_limit: Optional[int] = None,
    ) -> None:
        if policy not in ("first", "random", "adversarial"):
            raise ValueError(f"unknown policy {policy}")
        self.schema = schema
        self.data = data
        self.policy = policy
        self.rate_limit = rate_limit
        self._rng = random.Random(seed)
        self._memo: dict[tuple[str, tuple], frozenset[Atom]] = {}
        self.calls: list[CallLogEntry] = []

    # ------------------------------------------------------------------
    def call(
        self, method_name: str, *binding_values: object
    ) -> list[tuple]:
        """Perform an access; returns plain value tuples (like an API).

        Bare Python values in the binding are wrapped into constants.
        """
        if self.rate_limit is not None and len(self.calls) >= self.rate_limit:
            raise RateLimitExceeded(
                f"rate limit of {self.rate_limit} calls reached"
            )
        method = self.schema.method(method_name)
        binding = tuple(
            value if isinstance(value, (Constant,)) else Constant(value)
            for value in binding_values
        )
        request = AccessRequest(method, binding)
        output = self._select(request)
        self.calls.append(
            CallLogEntry(
                method_name,
                binding,
                len(output),
                truncated=len(output)
                < len(matching_tuples(self.data, request)),
            )
        )
        return sorted(
            tuple(
                t.value if isinstance(t, Constant) else t
                for t in fact.terms
            )
            for fact in output
        )

    def _select(self, request: AccessRequest) -> frozenset[Atom]:
        key = (request.method.name, request.binding)
        if key in self._memo:
            return self._memo[key]
        matching = sorted(matching_tuples(self.data, request), key=repr)
        bound = request.method.effective_bound()
        if bound is None or len(matching) <= bound:
            chosen = frozenset(matching)
        else:
            size = required_output_size(request.method, len(matching))
            if self.policy == "first":
                chosen = frozenset(matching[:size])
            elif self.policy == "adversarial":
                chosen = frozenset(matching[-size:])
            else:
                chosen = frozenset(self._rng.sample(matching, size))
        self._memo[key] = chosen
        return chosen

    # ------------------------------------------------------------------
    def selection(self) -> "ServiceSelection":
        """An `AccessSelection` view of this service for plan execution."""
        return ServiceSelection(self)

    def total_calls(self) -> int:
        return len(self.calls)

    def truncated_calls(self) -> int:
        return sum(1 for entry in self.calls if entry.truncated)


class ServiceSelection(AccessSelection):
    """Adapter: run plans against a `WebService`."""

    def __init__(self, service: WebService) -> None:
        super().__init__()
        self._service = service

    def _choose(
        self, instance: Instance, request: AccessRequest
    ) -> frozenset[Atom]:
        # The service ignores the passed instance: it owns the data.
        return self._service._select(request)


# ----------------------------------------------------------------------
# Ready-made simulated providers
# ----------------------------------------------------------------------
def chemistry_service(
    compounds: int = 200,
    *,
    lookup_cap: int = 50,
    seed: int = 0,
) -> tuple[Schema, WebService]:
    """A ChEBI-flavoured provider: compounds and a capped search method.

    ``Compound(id, formula, mass_class)`` with an exact by-id method and
    a by-formula search capped at `lookup_cap`; ``Ontology(id, parent)``
    with a by-id method and the ID Ontology[0] ⊆ Compound[0].
    """
    from ..constraints.tgd import inclusion_dependency

    schema = Schema()
    schema.add_relation(
        "Compound", 3, attributes=("id", "formula", "mass_class")
    )
    schema.add_relation("Ontology", 2, attributes=("id", "parent"))
    schema.add_method("compound_by_id", "Compound", inputs=[0])
    schema.add_method(
        "search_by_formula", "Compound", inputs=[1],
        result_bound=lookup_cap,
    )
    schema.add_method("ontology_by_id", "Ontology", inputs=[0])
    schema.add_constraint(
        inclusion_dependency("Ontology", (0,), "Compound", (0,), 2, 3)
    )
    rng = random.Random(seed)
    data = Instance()
    for i in range(compounds):
        formula = f"C{rng.randint(1, 4)}H{rng.randint(1, 9)}"
        data.add(
            Atom(
                "Compound",
                (
                    Constant(i),
                    Constant(formula),
                    Constant(rng.choice(["light", "heavy"])),
                ),
            )
        )
        if rng.random() < 0.7:
            data.add(
                Atom(
                    "Ontology",
                    (Constant(i), Constant(rng.randrange(compounds))),
                )
            )
    return schema, WebService(schema, data, policy="random", seed=seed)


def movie_service(
    titles: int = 300,
    *,
    listing_cap: int = 100,
    seed: int = 1,
) -> tuple[Schema, WebService]:
    """An IMDb-flavoured provider with a capped listing.

    ``Title(id, year_class, rating_class)`` with a capped input-free
    listing and an exact by-id method; the FD id → rating_class makes
    by-id accesses with bound 1 reliable on the rating column
    (Example 1.5's mechanism on real-ish data).
    """
    from ..constraints.fd import fd as make_fd

    schema = Schema()
    schema.add_relation(
        "Title", 3, attributes=("id", "year_class", "rating_class")
    )
    schema.add_method(
        "list_titles", "Title", inputs=[], result_bound=listing_cap
    )
    schema.add_method("title_by_id", "Title", inputs=[0], result_bound=1)
    schema.add_constraint(make_fd("Title", [0], 2))
    rng = random.Random(seed)
    data = Instance()
    for i in range(titles):
        # The year class is NOT determined by the id (re-releases), so
        # the same id may appear with several year classes.
        for __ in range(rng.randint(1, 2)):
            data.add(
                Atom(
                    "Title",
                    (
                        Constant(i),
                        Constant(rng.choice(["old", "new"])),
                        Constant(i % 10),  # determined by id
                    ),
                )
            )
    return schema, WebService(schema, data, policy="adversarial", seed=seed)
