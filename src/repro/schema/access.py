"""Access methods, with optional result bounds or result lower bounds.

A method on relation R has *input positions*; an access supplies values
for them (a binding) and receives matching tuples back (paper §2).  A
**result bound** of k asserts (i) at most k tuples are returned and
(ii) if at most k tuples match, all of them are returned — equivalently,
any valid output has exactly ``min(|matching|, k)`` tuples.  A **result
lower bound** keeps only (ii): any valid output has at least
``min(|matching|, k)`` tuples.  `ElimUB` (Prop 3.3) turns the former into
the latter without affecting monotone answerability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .relation import Relation


@dataclass(frozen=True)
class AccessMethod:
    """An access method on a relation.

    Exactly one of `result_bound` / `result_lower_bound` may be set; both
    None means the method returns all matching tuples.
    """

    name: str
    relation: Relation
    input_positions: frozenset[int]
    result_bound: Optional[int] = None
    result_lower_bound: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.input_positions, frozenset):
            object.__setattr__(
                self, "input_positions", frozenset(self.input_positions)
            )
        for position in self.input_positions:
            if not 0 <= position < self.relation.arity:
                raise ValueError(
                    f"method {self.name}: input position {position} out of "
                    f"range for {self.relation}"
                )
        if self.result_bound is not None and self.result_lower_bound is not None:
            raise ValueError(
                f"method {self.name}: cannot have both a result bound and a "
                "result lower bound"
            )
        for bound in (self.result_bound, self.result_lower_bound):
            if bound is not None and bound < 1:
                raise ValueError(
                    f"method {self.name}: bounds must be positive"
                )

    # ------------------------------------------------------------------
    @property
    def output_positions(self) -> tuple[int, ...]:
        return tuple(
            i for i in self.relation.positions if i not in self.input_positions
        )

    @property
    def sorted_input_positions(self) -> tuple[int, ...]:
        return tuple(sorted(self.input_positions))

    def is_input_free(self) -> bool:
        return not self.input_positions

    def is_boolean(self) -> bool:
        """All positions are inputs (the access is a membership test)."""
        return len(self.input_positions) == self.relation.arity

    def is_result_bounded(self) -> bool:
        return self.result_bound is not None

    def has_lower_bound_only(self) -> bool:
        return self.result_lower_bound is not None

    def effective_bound(self) -> Optional[int]:
        """The k of either bound kind, or None for exact methods."""
        if self.result_bound is not None:
            return self.result_bound
        return self.result_lower_bound

    def with_result_bound(self, bound: Optional[int]) -> "AccessMethod":
        return AccessMethod(
            self.name, self.relation, self.input_positions, bound, None
        )

    def with_lower_bound(self, bound: Optional[int]) -> "AccessMethod":
        return AccessMethod(
            self.name, self.relation, self.input_positions, None, bound
        )

    def __repr__(self) -> str:
        inputs = ",".join(str(i + 1) for i in self.sorted_input_positions)
        suffix = ""
        if self.result_bound is not None:
            suffix = f" [≤{self.result_bound}]"
        elif self.result_lower_bound is not None:
            suffix = f" [lower {self.result_lower_bound}]"
        return f"{self.name}: {self.relation.name}({inputs or '∅'}){suffix}"
