"""Service schemas: signature + integrity constraints + access methods.

A `Schema` packages the three components of the paper's query-and-access
model (§2).  It offers a fluent builder API::

    schema = Schema()
    schema.add_relation("Prof", 3, attributes=("id", "name", "salary"))
    schema.add_relation("Udirectory", 3, attributes=("id", "addr", "phone"))
    schema.add_method("pr", "Prof", inputs=[0])
    schema.add_method("ud", "Udirectory", inputs=[], result_bound=100)
    schema.add_constraint(tgd("Prof(i,n,s) -> Udirectory(i,a,p)"))
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..constraints.analysis import (
    ClassifiedConstraints,
    ConstraintClass,
    classify,
)
from ..constraints.egd import EGD
from ..constraints.fd import FunctionalDependency
from ..constraints.tgd import TGD
from ..data.instance import Instance
from .access import AccessMethod
from .relation import Relation

Dependency = Union[TGD, EGD, FunctionalDependency]


class SchemaError(ValueError):
    """Raised on inconsistent schema definitions."""


class Schema:
    """A service schema: relations, constraints, and access methods."""

    def __init__(
        self,
        relations: Iterable[Relation] = (),
        constraints: Iterable[Dependency] = (),
        methods: Iterable[AccessMethod] = (),
    ) -> None:
        self._relations: dict[str, Relation] = {}
        self._constraints: list[Dependency] = []
        self._methods: dict[str, AccessMethod] = {}
        for relation in relations:
            self.add(relation)
        for constraint in constraints:
            self.add_constraint(constraint)
        for method in methods:
            self.add(method)

    # ------------------------------------------------------------------
    # Builder API
    # ------------------------------------------------------------------
    def add(self, item: Union[Relation, AccessMethod, Dependency]) -> None:
        if isinstance(item, Relation):
            existing = self._relations.get(item.name)
            if existing is not None and existing != item:
                raise SchemaError(f"conflicting relation {item.name}")
            self._relations[item.name] = item
        elif isinstance(item, AccessMethod):
            self.add(item.relation)
            if item.name in self._methods:
                raise SchemaError(f"duplicate method name {item.name}")
            self._methods[item.name] = item
        else:
            self.add_constraint(item)

    def add_relation(
        self,
        name: str,
        arity: int,
        attributes: Optional[Sequence[str]] = None,
    ) -> Relation:
        relation = Relation(
            name, arity, tuple(attributes) if attributes else None
        )
        self.add(relation)
        return relation

    def add_method(
        self,
        name: str,
        relation: str,
        inputs: Iterable[int] = (),
        *,
        result_bound: Optional[int] = None,
        result_lower_bound: Optional[int] = None,
    ) -> AccessMethod:
        if relation not in self._relations:
            raise SchemaError(f"unknown relation {relation}")
        method = AccessMethod(
            name,
            self._relations[relation],
            frozenset(inputs),
            result_bound,
            result_lower_bound,
        )
        self.add(method)
        return method

    def add_constraint(self, constraint: Dependency) -> None:
        for relation in constraint.relations():
            if relation not in self._relations:
                raise SchemaError(
                    f"constraint mentions unknown relation {relation}: "
                    f"{constraint}"
                )
        self._constraints.append(constraint)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def relations(self) -> tuple[Relation, ...]:
        return tuple(self._relations.values())

    @property
    def constraints(self) -> tuple[Dependency, ...]:
        return tuple(self._constraints)

    @property
    def methods(self) -> tuple[AccessMethod, ...]:
        return tuple(self._methods.values())

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name}") from None

    def method(self, name: str) -> AccessMethod:
        try:
            return self._methods[name]
        except KeyError:
            raise SchemaError(f"unknown method {name}") from None

    def methods_on(self, relation: str) -> tuple[AccessMethod, ...]:
        return tuple(
            m for m in self._methods.values() if m.relation.name == relation
        )

    def arities(self) -> dict[str, int]:
        return {name: rel.arity for name, rel in self._relations.items()}

    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def result_bounded_methods(self) -> tuple[AccessMethod, ...]:
        return tuple(
            m
            for m in self._methods.values()
            if m.is_result_bounded() or m.has_lower_bound_only()
        )

    def has_result_bounds(self) -> bool:
        return bool(self.result_bounded_methods())

    def classified_constraints(
        self, *, width_bound: Optional[int] = 2
    ) -> ClassifiedConstraints:
        return classify(self._constraints, width_bound=width_bound)

    def constraint_class(
        self, *, width_bound: Optional[int] = 2
    ) -> ConstraintClass:
        return self.classified_constraints(width_bound=width_bound).fragment

    def satisfied_by(self, instance: Instance) -> bool:
        """True iff the instance satisfies every constraint."""
        return all(c.satisfied_by(instance) for c in self._constraints)

    # ------------------------------------------------------------------
    def copy(self) -> "Schema":
        return Schema(self.relations, self.constraints, self.methods)

    def replace_methods(self, methods: Iterable[AccessMethod]) -> "Schema":
        """A copy of the schema with a different method set."""
        return Schema(self.relations, self.constraints, methods)

    def __repr__(self) -> str:
        lines = ["Schema:"]
        lines.extend(f"  relation {r!r}" for r in self.relations)
        lines.extend(f"  method {m!r}" for m in self.methods)
        lines.extend(f"  constraint {c!r}" for c in self.constraints)
        return "\n".join(lines)
