"""Service schemas: relations, access methods, constraints."""

from .access import AccessMethod
from .relation import Relation
from .schema import Schema, SchemaError

__all__ = ["AccessMethod", "Relation", "Schema", "SchemaError"]
