"""Relations of a service schema."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Relation:
    """A relation with a name, an arity, and optional attribute names.

    Attribute names are purely cosmetic (printing, examples); positions
    are the semantic identity, matching the paper.
    """

    name: str
    arity: int
    attributes: Optional[tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise ValueError("arity must be non-negative")
        if self.attributes is not None:
            if not isinstance(self.attributes, tuple):
                object.__setattr__(self, "attributes", tuple(self.attributes))
            if len(self.attributes) != self.arity:
                raise ValueError(
                    f"{self.name}: {len(self.attributes)} attribute names "
                    f"for arity {self.arity}"
                )

    @property
    def positions(self) -> range:
        """All 0-based positions of the relation."""
        return range(self.arity)

    def attribute_name(self, position: int) -> str:
        if self.attributes is not None:
            return self.attributes[position]
        return f"#{position + 1}"

    def __repr__(self) -> str:
        if self.attributes:
            inner = ", ".join(self.attributes)
        else:
            inner = str(self.arity)
        return f"{self.name}({inner})"
