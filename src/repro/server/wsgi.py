"""Optional WSGI adapter: the same pool behind any WSGI httpd.

Stdlib-only (pairs with ``wsgiref.simple_server`` for a dependency-free
HTTP front end); the heavy lifting — routing, session pooling, limits —
is the shared `SessionPool`, so an HTTP deployment and the JSON-lines
TCP server give byte-identical response payloads.

Routes:

* ``POST /decide`` (or ``/``) — body is one `DecideRequest` JSON
  object (or a bare query string); response is the `DecideResponse` /
  `PlanResponse` JSON.  The frame's ``op`` may also be ``plan``.
* ``GET /stats``  — the pool's aggregated statistics (JSON-safe,
  stable key order).
* ``GET /metrics`` — Prometheus text exposition of the app's
  `repro.obs.MetricsRegistry`: the request-latency histogram, the
  per-stage split, and every pool/session/matcher/engine/store counter
  via the registry's providers.
* ``GET /healthz`` — liveness probe.

Errors are `ErrorFrame` JSON — never a traceback page: HTTP 400 for
bad input (malformed frame, bad schema, unparseable query), 404/413
for routing/size problems, 503 with a ``Retry-After`` header for
retryable resource exhaustion (an expired request deadline, an
overloaded pool), 500 for internal failures.

::

    from wsgiref.simple_server import make_server
    from repro.server import SessionPool, make_wsgi_app

    app = make_wsgi_app(SessionPool(schema))
    make_server("127.0.0.1", 8080, app).serve_forever()
"""

from __future__ import annotations

import json
import math
import time
from typing import Callable, Iterable, Optional

from ..io import DecideRequest, ErrorFrame, json_safe
from ..obs.exposition import CONTENT_TYPE as METRICS_CONTENT_TYPE
from ..obs.logs import RequestLogger
from ..obs.registry import MetricsRegistry
from ..obs.timing import StageTimer, activate, deactivate
from ..runtime import DeadlineExceeded, Overloaded
from .pool import SessionPool, introspection_frame

#: Request bodies past this come back 400 (mirrors MAX_FRAME_BYTES).
MAX_BODY_BYTES = 1 << 20

_JSON = [("Content-Type", "application/json")]


def make_wsgi_app(
    pool: SessionPool,
    *,
    metrics: Optional[MetricsRegistry] = None,
    request_log: Optional[RequestLogger] = None,
) -> Callable:
    """A WSGI application deciding requests against ``pool``.

    ``metrics`` (default: a fresh `MetricsRegistry`) backs the
    ``GET /metrics`` exposition; pass the server's registry to share
    one exposition across the TCP and HTTP front ends.  ``request_log``
    (optional) emits one JSON line per decide/plan request.
    """
    registry = metrics if metrics is not None else MetricsRegistry()
    # Duck-typed pools (tests, adapters) may lack register_metrics;
    # fall back to exposing their stats() as a provider directly.
    if hasattr(pool, "register_metrics"):
        pool.register_metrics(registry)
    elif hasattr(pool, "stats"):
        registry.register_provider("pool", pool.stats)
    m_requests = registry.counter(
        "repro_http_requests_total",
        "HTTP requests processed, by op and outcome.",
        labels=("op", "outcome"),
    )
    m_request_ms = registry.histogram(
        "repro_http_request_ms",
        "Wall time per HTTP decide/plan request, ms.",
        labels=("op",),
    )
    m_stage_ms = registry.histogram(
        "repro_http_request_stage_ms",
        "Exclusive per-stage time within one HTTP request, ms.",
        labels=("stage",),
    )

    def respond(
        start_response,
        status: str,
        payload: dict,
        extra_headers: list = (),
    ) -> Iterable[bytes]:
        # sort_keys: introspection payloads promise a stable key order;
        # json_safe guards against any provider leaking a non-JSON
        # value into a frame.
        body = json.dumps(json_safe(payload), sort_keys=True).encode(
            "utf-8"
        )
        start_response(
            status,
            _JSON
            + [("Content-Length", str(len(body)))]
            + list(extra_headers),
        )
        return [body]

    def observe(
        request: Optional[DecideRequest],
        frame: dict,
        started: float,
        timer: Optional[StageTimer],
        peer: str,
    ) -> None:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        op = request.op if request is not None else "invalid"
        error = frame.get("error")
        failed = isinstance(error, dict) and "decision" not in frame
        outcome = "error" if failed else "ok"
        stages = timer.as_millis() if timer is not None else {}
        m_requests.inc(op=op, outcome=outcome)
        m_request_ms.observe(elapsed_ms, op=op)
        for name, ms in stages.items():
            m_stage_ms.observe(ms, stage=name)
        if request_log is not None:
            request_log.log(
                peer=peer,
                op=op,
                id=frame.get("id"),
                fingerprint=frame.get("fingerprint") or None,
                outcome=outcome,
                error_type=error.get("type") if failed else None,
                retryable=error.get("retryable") if failed else None,
                retry_after_ms=(
                    error.get("retry_after_ms") if failed else None
                ),
                cached=frame.get("cached"),
                decision=frame.get("decision"),
                elapsed_ms=round(elapsed_ms, 3),
                stages_ms=stages or None,
            )

    def application(environ, start_response) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/") or "/"
        if method == "GET" and path == "/healthz":
            return respond(start_response, "200 OK", {"ok": True})
        if method == "GET" and path == "/metrics":
            body = registry.render().encode("utf-8")
            start_response(
                "200 OK",
                [
                    ("Content-Type", METRICS_CONTENT_TYPE),
                    ("Content-Length", str(len(body))),
                ],
            )
            return [body]
        if method == "GET" and path == "/stats":
            return respond(
                start_response,
                "200 OK",
                introspection_frame(DecideRequest(op="stats"), pool),
            )
        if method != "POST" or path not in ("/", "/decide"):
            return respond(
                start_response,
                "404 Not Found",
                ErrorFrame(
                    "NotFound", f"no route {method} {path}"
                ).to_dict(),
            )
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            return respond(
                start_response,
                "413 Payload Too Large",
                ErrorFrame(
                    "FrameTooLong",
                    f"request body exceeds {MAX_BODY_BYTES} bytes",
                ).to_dict(),
            )
        body = environ["wsgi.input"].read(length) if length else b""
        started = time.perf_counter()
        peer = environ.get("REMOTE_ADDR", "?")
        try:
            request = DecideRequest.from_dict(
                json.loads(body.decode("utf-8"))
            )
        except Exception as error:
            frame = ErrorFrame.from_exception(error).to_dict()
            observe(None, frame, started, None, peer)
            return respond(start_response, "400 Bad Request", frame)
        if request.op in ("ping", "stats", "metrics"):
            return respond(
                start_response,
                "200 OK",
                introspection_frame(request, pool, metrics=registry),
            )
        timer = StageTimer()
        previous = activate(timer)
        try:
            response = pool.process(request)
        except (DeadlineExceeded, Overloaded) as error:
            # Retryable resource exhaustion: 503 + Retry-After so
            # well-behaved HTTP clients back off (header granularity is
            # whole seconds; the frame's retry_after_ms is exact).
            retry_after = getattr(error, "retry_after_ms", None)
            headers = [
                (
                    "Retry-After",
                    str(
                        max(1, math.ceil(retry_after / 1000.0))
                        if retry_after is not None
                        else 1
                    ),
                )
            ]
            frame = ErrorFrame.from_exception(error, id=request.id).to_dict()
            observe(request, frame, started, timer, peer)
            return respond(
                start_response, "503 Service Unavailable", frame, headers
            )
        except Exception as error:
            # Bad input is the client's fault (400): SchemaFormatError,
            # ParseError, and routing errors are all ValueErrors.
            # Anything else is an internal failure and must alert as
            # one (500).
            bad_request = isinstance(error, ValueError)
            frame = ErrorFrame.from_exception(error, id=request.id).to_dict()
            observe(request, frame, started, timer, peer)
            return respond(
                start_response,
                "400 Bad Request"
                if bad_request
                else "500 Internal Server Error",
                frame,
            )
        finally:
            deactivate(previous)
        frame = response.to_dict()
        observe(request, frame, started, timer, peer)
        return respond(start_response, "200 OK", frame)

    return application
