"""Optional WSGI adapter: the same pool behind any WSGI httpd.

Stdlib-only (pairs with ``wsgiref.simple_server`` for a dependency-free
HTTP front end); the heavy lifting — routing, session pooling, limits —
is the shared `SessionPool`, so an HTTP deployment and the JSON-lines
TCP server give byte-identical response payloads.

Routes:

* ``POST /decide`` (or ``/``) — body is one `DecideRequest` JSON
  object (or a bare query string); response is the `DecideResponse` /
  `PlanResponse` JSON.  The frame's ``op`` may also be ``plan``.
* ``GET /stats``  — the pool's aggregated statistics.
* ``GET /healthz`` — liveness probe.

Errors are `ErrorFrame` JSON — never a traceback page: HTTP 400 for
bad input (malformed frame, bad schema, unparseable query), 404/413
for routing/size problems, 503 with a ``Retry-After`` header for
retryable resource exhaustion (an expired request deadline, an
overloaded pool), 500 for internal failures.

::

    from wsgiref.simple_server import make_server
    from repro.server import SessionPool, make_wsgi_app

    app = make_wsgi_app(SessionPool(schema))
    make_server("127.0.0.1", 8080, app).serve_forever()
"""

from __future__ import annotations

import json
import math
from typing import Callable, Iterable

from ..io import DecideRequest, ErrorFrame
from ..runtime import DeadlineExceeded, Overloaded
from .pool import SessionPool, introspection_frame

#: Request bodies past this come back 400 (mirrors MAX_FRAME_BYTES).
MAX_BODY_BYTES = 1 << 20

_JSON = [("Content-Type", "application/json")]


def make_wsgi_app(pool: SessionPool) -> Callable:
    """A WSGI application deciding requests against ``pool``."""

    def respond(
        start_response,
        status: str,
        payload: dict,
        extra_headers: list = (),
    ) -> Iterable[bytes]:
        body = json.dumps(payload).encode("utf-8")
        start_response(
            status,
            _JSON
            + [("Content-Length", str(len(body)))]
            + list(extra_headers),
        )
        return [body]

    def application(environ, start_response) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/") or "/"
        if method == "GET" and path == "/healthz":
            return respond(start_response, "200 OK", {"ok": True})
        if method == "GET" and path == "/stats":
            return respond(
                start_response,
                "200 OK",
                introspection_frame(DecideRequest(op="stats"), pool),
            )
        if method != "POST" or path not in ("/", "/decide"):
            return respond(
                start_response,
                "404 Not Found",
                ErrorFrame(
                    "NotFound", f"no route {method} {path}"
                ).to_dict(),
            )
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            return respond(
                start_response,
                "413 Payload Too Large",
                ErrorFrame(
                    "FrameTooLong",
                    f"request body exceeds {MAX_BODY_BYTES} bytes",
                ).to_dict(),
            )
        body = environ["wsgi.input"].read(length) if length else b""
        try:
            request = DecideRequest.from_dict(
                json.loads(body.decode("utf-8"))
            )
        except Exception as error:
            return respond(
                start_response,
                "400 Bad Request",
                ErrorFrame.from_exception(error).to_dict(),
            )
        if request.op in ("ping", "stats"):
            return respond(
                start_response,
                "200 OK",
                introspection_frame(request, pool),
            )
        try:
            response = pool.process(request)
        except (DeadlineExceeded, Overloaded) as error:
            # Retryable resource exhaustion: 503 + Retry-After so
            # well-behaved HTTP clients back off (header granularity is
            # whole seconds; the frame's retry_after_ms is exact).
            retry_after = getattr(error, "retry_after_ms", None)
            headers = [
                (
                    "Retry-After",
                    str(
                        max(1, math.ceil(retry_after / 1000.0))
                        if retry_after is not None
                        else 1
                    ),
                )
            ]
            return respond(
                start_response,
                "503 Service Unavailable",
                ErrorFrame.from_exception(error, id=request.id).to_dict(),
                headers,
            )
        except Exception as error:
            # Bad input is the client's fault (400): SchemaFormatError,
            # ParseError, and routing errors are all ValueErrors.
            # Anything else is an internal failure and must alert as
            # one (500).
            bad_request = isinstance(error, ValueError)
            return respond(
                start_response,
                "400 Bad Request"
                if bad_request
                else "500 Internal Server Error",
                ErrorFrame.from_exception(error, id=request.id).to_dict(),
            )
        return respond(start_response, "200 OK", response.to_dict())

    return application
