"""Serving front end: per-fingerprint session pooling over asyncio.

The layer that turns the service seam into a server:

* `SessionPool` — routes requests to `Session`s by schema content
  fingerprint (two-level: serialized spelling, then fingerprint), a
  bounded pool per fingerprint over one shared `CompiledSchema`, LRU
  eviction of cold fingerprints, aggregated `stats()` with per-shard
  heat, and `warm()` for manifest-driven precompilation;
* `DecideServer` / `run_server` — the asyncio JSON-lines TCP front end:
  decisions on a bounded worker-thread executor, backpressure via a
  bounded in-flight gate (optionally shedding `Overloaded` frames),
  per-request deadlines with cooperative cancellation, per-client
  token-bucket quotas, graceful drain, and structured `ErrorFrame`s
  for every failure;
* `Supervisor` / `WorkerSpec` / `WorkerHandle` — the crash-tolerant
  worker supervisor: serve loop in a child process with a readiness
  handshake on stdout, health-check watchdog, jittered-exponential-
  backoff restarts, crash-loop breaker;
* `HashRing` / `FleetDispatcher` / `Fleet` — the prefork fleet: N
  supervised worker processes behind one dispatcher that routes frames
  by consistent hashing of the schema fingerprint, failing over worker
  deaths as typed retryable `WorkerLost` errors;
* `make_wsgi_app` — the same pool behind any WSGI httpd (stdlib
  ``wsgiref`` pairs with it for a dependency-free HTTP server), with
  Prometheus exposition on ``GET /metrics``.

Observability rides `repro.obs`: every layer here exposes
``register_metrics(registry)``, ``op: metrics`` returns the registry
snapshot (fleet-aggregated at the dispatcher), and ``--log-format
json`` turns on one-JSON-line-per-request logs.

Exposed on the CLI as ``python -m repro serve`` / ``supervise`` /
``fleet``.
"""

from .fleet import Fleet, FleetDispatcher, run_fleet
from .hashring import DEFAULT_REPLICAS, HashRing
from .pool import (
    DEFAULT_MAX_FINGERPRINTS,
    DEFAULT_POOL_SIZE,
    SessionLimits,
    SessionPool,
    introspection_frame,
)
from .server import (
    DEFAULT_MAX_PENDING,
    DEFAULT_PORT,
    DEFAULT_WORKERS,
    DecideServer,
    run_server,
)
from .supervisor import (
    BackoffPolicy,
    BreakerPolicy,
    CrashLoopError,
    Supervisor,
    WorkerHandle,
    WorkerSpec,
    serve_spawn,
    tcp_ping,
)
from .wsgi import make_wsgi_app

__all__ = [
    "DEFAULT_MAX_FINGERPRINTS", "DEFAULT_POOL_SIZE",
    "SessionLimits", "SessionPool", "introspection_frame",
    "DEFAULT_MAX_PENDING", "DEFAULT_PORT", "DEFAULT_WORKERS",
    "DecideServer", "run_server",
    "BackoffPolicy", "BreakerPolicy", "CrashLoopError",
    "Supervisor", "WorkerHandle", "WorkerSpec",
    "serve_spawn", "tcp_ping",
    "DEFAULT_REPLICAS", "HashRing",
    "Fleet", "FleetDispatcher", "run_fleet",
    "make_wsgi_app",
]
