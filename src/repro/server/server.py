"""The asyncio JSON-lines front end over a `SessionPool`.

One TCP connection speaks the `repro.io` wire protocol, newline-framed:
each request line is a `DecideRequest` frame (a bare query string or an
object with ``op``/``schema``/``id``/``finite``), each response line a
`DecideResponse`, `PlanResponse`, stats, pong, or `ErrorFrame` JSON
object.  Frames on one connection are processed in order (responses
line up with requests); concurrency comes from concurrent connections.

The event loop never decides anything itself: decisions run on a
bounded worker-thread executor, so slow chases cannot stall frame
parsing, stats probes, or other connections.  Backpressure is a
bounded in-flight gate: once ``max_pending`` decisions are queued or
running, readers simply stop pulling new frames until capacity frees —
the TCP receive window, not an unbounded buffer, absorbs the burst.

Malformed frames (bad JSON, unknown op, invalid schema, a query that
does not parse) come back as structured `ErrorFrame`s on the stream —
never a traceback, and the connection stays open.  The one exception
is a frame longer than `MAX_FRAME_BYTES`: the line stream cannot be
resynchronized past it, so the server sends a ``FrameTooLong`` error
frame and then closes that connection.

::

    server = DecideServer(pool, port=0)        # port 0: ephemeral
    await server.start()
    host, port = server.address
    ...
    await server.close()

or, blocking: ``python -m repro serve schema.json --port 8765``.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..io import DecideRequest, ErrorFrame
from .pool import SessionPool, introspection_frame

#: Default TCP port (unassigned by IANA; "answerability" has no port).
DEFAULT_PORT = 8765
#: Default bound on queued-or-running decisions (the backpressure gate).
DEFAULT_MAX_PENDING = 64
#: Default worker threads deciding concurrently.
DEFAULT_WORKERS = 4

#: Cap on one request line; longer frames get a structured error (the
#: asyncio default readline limit would kill the connection instead).
MAX_FRAME_BYTES = 1 << 20


class DecideServer:
    """Serve `SessionPool` decisions over newline-framed JSON on TCP.

    The server owns a worker-thread executor (``workers`` threads) and
    an in-flight gate (``max_pending``); the pool may be shared with
    other front ends (e.g. the WSGI adapter) — all its state is
    thread-safe.
    """

    def __init__(
        self,
        pool: SessionPool,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = DEFAULT_WORKERS,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.pool = pool
        self.host = host
        self.port = port
        self.workers = workers
        self.max_pending = max_pending
        self._executor: Optional[ThreadPoolExecutor] = None
        self._gate: Optional[asyncio.Semaphore] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._counters = {
            "connections": 0,
            "connections_open": 0,
            "frames": 0,
            "responses": 0,
            "errors": 0,
            "in_flight": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "DecideServer":
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return self
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._gate = asyncio.Semaphore(self.max_pending)
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_FRAME_BYTES,
        )
        # Resolve the actual port (supports port=0 for tests).
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    async def serve_forever(self) -> None:
        """Start (if needed) and block until cancelled/closed."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def close(self) -> None:
        """Stop accepting, close the listener, release the executor.

        In-flight executor decisions run to completion (``shutdown``
        waits), so a clean close never abandons a worker mid-chase.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._executor is not None:
            executor = self._executor
            self._executor = None
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: executor.shutdown(wait=True)
            )

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._counters["connections"] += 1
        self._counters["connections_open"] += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # frame longer than MAX_FRAME_BYTES
                    self._counters["errors"] += 1
                    frame = ErrorFrame(
                        "FrameTooLong",
                        f"request frame exceeds {MAX_FRAME_BYTES} bytes",
                    ).to_dict()
                    await self._write(writer, frame)
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                frame = await self._process_line(line)
                await self._write(writer, frame)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._counters["connections_open"] -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, frame: dict) -> None:
        writer.write(json.dumps(frame).encode("utf-8") + b"\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    async def _process_line(self, line: bytes) -> dict:
        self._counters["frames"] += 1
        request: Optional[DecideRequest] = None
        try:
            request = DecideRequest.from_dict(
                json.loads(line.decode("utf-8"))
            )
        except Exception as error:
            self._counters["errors"] += 1
            snippet = line.decode("utf-8", "replace").strip()
            return ErrorFrame.from_exception(
                error, line=snippet[:200]
            ).to_dict()
        if request.op in ("ping", "stats"):
            self._counters["responses"] += 1
            return introspection_frame(
                request,
                self.pool,
                server={
                    "workers": self.workers,
                    "max_pending": self.max_pending,
                    **self._counters,
                },
            )
        assert self._gate is not None and self._executor is not None
        async with self._gate:  # backpressure: bounded in-flight work
            self._counters["in_flight"] += 1
            try:
                response = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self.pool.process, request
                )
            except Exception as error:
                self._counters["errors"] += 1
                return ErrorFrame.from_exception(
                    error, id=request.id
                ).to_dict()
            finally:
                self._counters["in_flight"] -= 1
        self._counters["responses"] += 1
        return response.to_dict()

    def __repr__(self) -> str:
        state = "listening" if self._server is not None else "stopped"
        return f"DecideServer({self.host}:{self.port}, {state})"


async def run_server(
    pool: SessionPool,
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    workers: int = DEFAULT_WORKERS,
    max_pending: int = DEFAULT_MAX_PENDING,
    ready: Optional[asyncio.Event] = None,
) -> None:
    """Start a `DecideServer` and serve until cancelled.

    ``ready`` (when given) is set once the socket is bound — test and
    benchmark harnesses wait on it instead of polling the port.
    """
    server = DecideServer(
        pool, host=host, port=port, workers=workers, max_pending=max_pending
    )
    await server.start()
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    finally:
        await server.close()
