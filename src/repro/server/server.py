"""The asyncio JSON-lines front end over a `SessionPool`.

One TCP connection speaks the `repro.io` wire protocol, newline-framed:
each request line is a `DecideRequest` frame (a bare query string or an
object with ``op``/``schema``/``id``/``finite``/``deadline_ms``), each
response line a `DecideResponse`, `PlanResponse`, stats, pong, or
`ErrorFrame` JSON object.  Frames on one connection are processed in
order (responses line up with requests); concurrency comes from
concurrent connections.

The event loop never decides anything itself: decisions run on a
bounded worker-thread executor, so slow chases cannot stall frame
parsing, stats probes, or other connections.  Backpressure is a
bounded in-flight gate: once ``max_pending`` decisions are queued or
running, readers simply stop pulling new frames until capacity frees —
the TCP receive window, not an unbounded buffer, absorbs the burst.
With ``shed_after_ms`` set, a frame that cannot acquire the gate in
time is *shed* with a retryable ``Overloaded`` error frame instead of
waiting — saturation becomes visible to clients, never a silent stall.

**Deadlines.** Each decide/plan frame runs under a
`repro.runtime.Budget` (from the frame's ``deadline_ms``, capped by the
pool's configured default); an exhausted budget surfaces as a
retryable ``DeadlineExceeded`` error frame while the connection stays
open.  The server keeps a registry of in-flight budgets so drain (and
only drain) can cancel them cooperatively.

**Per-client fairness.** Optional token-bucket rate limiting
(``client_rate``/``client_burst``) and an in-flight quota
(``max_inflight_per_client``), both keyed by peer address: one hostile
client saturating its bucket gets ``Overloaded`` frames with a
``retry_after_ms`` hint while other clients' latency stays flat.

**Graceful drain.** ``close(drain_timeout=...)`` stops accepting,
lets in-flight work finish (cancelling budgets once half the timeout
is spent), flushes final frames, and only then releases the executor.
``python -m repro serve`` wires SIGTERM to exactly this path.

Malformed frames (bad JSON, unknown op, invalid schema, a query that
does not parse) come back as structured `ErrorFrame`s on the stream —
never a traceback, and the connection stays open.  The one exception
is a frame longer than `MAX_FRAME_BYTES`: the line stream cannot be
resynchronized past it, so the server sends a ``FrameTooLong`` error
frame and then closes that connection.

::

    server = DecideServer(pool, port=0)        # port 0: ephemeral
    await server.start()
    host, port = server.address
    ...
    await server.close(drain_timeout=5.0)

or, blocking: ``python -m repro serve schema.json --port 8765``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Optional

from ..io import DecideRequest, ErrorFrame
from ..obs.logs import RequestLogger
from ..obs.registry import MetricsRegistry
from ..obs.timing import StageTimer, activate, deactivate
from ..runtime import Budget, DeadlineExceeded, Overloaded
from .pool import SessionPool, introspection_frame

#: Default TCP port (unassigned by IANA; "answerability" has no port).
DEFAULT_PORT = 8765
#: Default bound on queued-or-running decisions (the backpressure gate).
DEFAULT_MAX_PENDING = 64
#: Default worker threads deciding concurrently.
DEFAULT_WORKERS = 4

#: Cap on one request line; longer frames get a structured error (the
#: asyncio default readline limit would kill the connection instead).
MAX_FRAME_BYTES = 1 << 20

#: Retry hint on quota/in-flight shedding when no better estimate exists.
DEFAULT_RETRY_AFTER_MS = 50.0
#: Bound on tracked per-client states (idle states are pruned first).
MAX_CLIENT_STATES = 1024


class _ClientState:
    """Token bucket + in-flight count for one peer address."""

    __slots__ = ("tokens", "stamp", "inflight")

    def __init__(self, burst: float, now: float) -> None:
        self.tokens = burst
        self.stamp = now
        self.inflight = 0

    def refill(self, rate: float, burst: float, now: float) -> None:
        self.tokens = min(burst, self.tokens + (now - self.stamp) * rate)
        self.stamp = now

    def take(self, rate: float, burst: float, now: float) -> Optional[float]:
        """Take one token; None on success, else a retry-after hint (ms)."""
        self.refill(rate, burst, now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        return max(1.0, (1.0 - self.tokens) / rate * 1000.0)

    def idle(
        self, rate: Optional[float], burst: float, now: float
    ) -> bool:
        """True when this peer holds no resources worth remembering.

        The bucket is *virtually* refilled first: ``tokens`` is only
        updated inside `take`, so a peer that drained its bucket and
        then went quiet would otherwise read as busy forever and never
        be prunable.  The state itself is not mutated — idleness is a
        read-only question.
        """
        if self.inflight != 0:
            return False
        if rate is None:
            return True
        refilled = min(burst, self.tokens + (now - self.stamp) * rate)
        return refilled >= burst


class DecideServer:
    """Serve `SessionPool` decisions over newline-framed JSON on TCP.

    The server owns a worker-thread executor (``workers`` threads) and
    an in-flight gate (``max_pending``); the pool may be shared with
    other front ends (e.g. the WSGI adapter) — all its state is
    thread-safe.

    ``client_rate`` (tokens/second, with ``client_burst`` capacity) and
    ``max_inflight_per_client`` are per-peer quotas, off by default;
    ``shed_after_ms`` turns global-gate saturation into ``Overloaded``
    shedding, off (pure backpressure) by default.  ``clock`` is the
    monotonic clock the token buckets read — injectable for tests.
    """

    def __init__(
        self,
        pool: SessionPool,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        workers: int = DEFAULT_WORKERS,
        max_pending: int = DEFAULT_MAX_PENDING,
        client_rate: Optional[float] = None,
        client_burst: float = 8.0,
        max_inflight_per_client: Optional[int] = None,
        shed_after_ms: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[MetricsRegistry] = None,
        request_log: Optional[RequestLogger] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if client_rate is not None and client_rate <= 0:
            raise ValueError(f"client_rate must be > 0, got {client_rate}")
        if client_burst < 1:
            raise ValueError(f"client_burst must be >= 1, got {client_burst}")
        if max_inflight_per_client is not None and max_inflight_per_client < 1:
            raise ValueError(
                "max_inflight_per_client must be >= 1, got "
                f"{max_inflight_per_client}"
            )
        self.pool = pool
        self.host = host
        self.port = port
        self.workers = workers
        self.max_pending = max_pending
        self.client_rate = client_rate
        self.client_burst = float(client_burst)
        self.max_inflight_per_client = max_inflight_per_client
        self.shed_after_ms = shed_after_ms
        self._clock = clock
        self._executor: Optional[ThreadPoolExecutor] = None
        self._gate: Optional[asyncio.Semaphore] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining: Optional[asyncio.Event] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._budgets: set[Budget] = set()
        self._clients: dict[str, _ClientState] = {}
        #: Shared bucket for peers arriving while the table is full of
        #: busy entries: they are not tracked individually (the cap is
        #: hard) but still pay quota — collectively.
        self._overflow_state: Optional[_ClientState] = None
        self._counters = {
            "connections": 0,
            "connections_open": 0,
            "frames": 0,
            "responses": 0,
            "errors": 0,
            "in_flight": 0,
            "overloaded": 0,
            "deadline_exceeded": 0,
            "cancelled": 0,
            "client_evictions": 0,
            "client_overflow": 0,
        }
        self.metrics: Optional[MetricsRegistry] = None
        self._request_log = request_log
        self._m_requests = None
        self._m_request_ms = None
        self._m_stage_ms = None
        if metrics is not None:
            self.register_metrics(metrics)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "DecideServer":
        """Bind and start accepting connections (idempotent)."""
        if self._server is not None:
            return self
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._gate = asyncio.Semaphore(self.max_pending)
        self._draining = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_FRAME_BYTES,
        )
        # Resolve the actual port (supports port=0 for tests).
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def draining(self) -> bool:
        return self._draining is not None and self._draining.is_set()

    async def serve_forever(self) -> None:
        """Start (if needed) and block until cancelled/closed."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def close(self, *, drain_timeout: Optional[float] = None) -> None:
        """Stop accepting and drain, then release the executor.

        Drain is staged: (1) set the drain flag — connection readers
        stop pulling new frames — and close the listener; (2) wait for
        in-flight work to finish naturally; with ``drain_timeout`` set,
        after half the timeout every in-flight `Budget` is cancelled
        (reason ``drain``) so workers surface retryable
        ``DeadlineExceeded`` frames instead of running long; (3) any
        connection task still alive at the deadline is force-cancelled.
        Responses for completed work are always flushed before their
        connection closes.  Without ``drain_timeout`` the server waits
        indefinitely for in-flight work (the pre-drain behavior, minus
        accepting new frames).
        """
        if self._draining is not None:
            self._draining.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        tasks = set(self._conn_tasks)
        if tasks:
            if drain_timeout is None:
                await asyncio.wait(tasks)
            else:
                __, pending = await asyncio.wait(
                    tasks, timeout=drain_timeout / 2.0
                )
                if pending:
                    self.cancel_in_flight("drain")
                    __, pending = await asyncio.wait(
                        pending, timeout=drain_timeout / 2.0
                    )
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.wait(pending, timeout=1.0)
        if self._executor is not None:
            executor = self._executor
            self._executor = None
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: executor.shutdown(wait=True)
            )

    def cancel_in_flight(self, reason: str = "cancelled") -> int:
        """Cancel every in-flight request budget; returns the count."""
        budgets = list(self._budgets)
        for budget in budgets:
            budget.cancel(reason)
        self._counters["cancelled"] += len(budgets)
        return len(budgets)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def register_metrics(self, registry: MetricsRegistry) -> None:
        """Adopt ``registry``: request instruments plus the legacy
        ``stats()`` surfaces as providers (DESIGN.md §3c)."""
        self.metrics = registry
        self._m_requests = registry.counter(
            "repro_requests_total",
            "Requests processed, by op and outcome.",
            labels=("op", "outcome"),
        )
        self._m_request_ms = registry.histogram(
            "repro_request_ms",
            "Wall time from frame receipt to response frame, ms.",
            labels=("op",),
        )
        self._m_stage_ms = registry.histogram(
            "repro_request_stage_ms",
            "Exclusive per-stage time within one request, ms.",
            labels=("stage",),
        )
        registry.register_provider("server", self.server_stats)
        # Duck-typed pools (tests) may lack register_metrics; expose
        # their stats() directly so the provider surface stays whole.
        if hasattr(self.pool, "register_metrics"):
            self.pool.register_metrics(registry)
        elif hasattr(self.pool, "stats"):
            registry.register_provider("pool", self.pool.stats)
        if self._request_log is not None:
            registry.register_provider(
                "request_log", self._request_log.stats
            )

    def server_stats(self) -> dict:
        """The transport-level stats block (``op: stats`` ``server``
        section and the registry's ``server`` provider)."""
        return {
            "workers": self.workers,
            "max_pending": self.max_pending,
            "draining": self.draining,
            "client_states": len(self._clients),
            **self._counters,
        }

    @property
    def _observing(self) -> bool:
        return self.metrics is not None or self._request_log is not None

    def _observe(
        self,
        request: Optional[DecideRequest],
        frame: dict,
        peer: str,
        started: float,
        timer: Optional[StageTimer],
    ) -> None:
        """Account one finished request: histograms and the log line."""
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        op = request.op if request is not None else "invalid"
        error = frame.get("error")
        # A DecideResponse carries ``decision`` even when its
        # decision-level ``error`` is set; a bare ErrorFrame never does.
        failed = isinstance(error, dict) and "decision" not in frame
        outcome = "error" if failed else "ok"
        stages = timer.as_millis() if timer is not None else {}
        if self.metrics is not None:
            self._m_requests.inc(op=op, outcome=outcome)
            self._m_request_ms.observe(elapsed_ms, op=op)
            for name, ms in stages.items():
                self._m_stage_ms.observe(ms, stage=name)
        if self._request_log is not None:
            error_type = error.get("type") if failed else None
            self._request_log.log(
                peer=peer,
                op=op,
                id=frame.get("id"),
                fingerprint=frame.get("fingerprint") or None,
                outcome=outcome,
                error_type=error_type,
                retryable=error.get("retryable") if failed else None,
                retry_after_ms=(
                    error.get("retry_after_ms") if failed else None
                ),
                cached=frame.get("cached"),
                decision=frame.get("decision"),
                elapsed_ms=round(elapsed_ms, 3),
                stages_ms=stages or None,
            )

    # ------------------------------------------------------------------
    # Per-client quotas
    # ------------------------------------------------------------------
    def _client_state(self, peer: str) -> _ClientState:
        state = self._clients.get(peer)
        if state is None:
            now = self._clock()
            if len(self._clients) >= MAX_CLIENT_STATES:
                idle = [
                    k
                    for k, s in self._clients.items()
                    if s.idle(self.client_rate, self.client_burst, now)
                ]
                for key in idle:
                    del self._clients[key]
                self._counters["client_evictions"] += len(idle)
            if len(self._clients) >= MAX_CLIENT_STATES:
                # Every tracked peer is genuinely busy: hold the cap.
                # Untracked newcomers share one overflow bucket — they
                # still pay quota, just collectively, so a many-peer
                # churn storm cannot grow the table without bound.
                self._counters["client_overflow"] += 1
                if self._overflow_state is None:
                    self._overflow_state = _ClientState(
                        self.client_burst, now
                    )
                return self._overflow_state
            state = _ClientState(self.client_burst, now)
            self._clients[peer] = state
        return state

    def _admit(
        self, peer: str, state: Optional[_ClientState]
    ) -> Optional[ErrorFrame]:
        """Apply per-client quotas; an `ErrorFrame` means *shed*."""
        if state is None:
            return None
        if (
            self.max_inflight_per_client is not None
            and state.inflight >= self.max_inflight_per_client
        ):
            return ErrorFrame.from_exception(
                Overloaded(
                    f"client {peer} has {state.inflight} requests in "
                    "flight (limit "
                    f"{self.max_inflight_per_client})",
                    retry_after_ms=DEFAULT_RETRY_AFTER_MS,
                    scope="client",
                )
            )
        if self.client_rate is not None:
            retry_after = state.take(
                self.client_rate, self.client_burst, self._clock()
            )
            if retry_after is not None:
                return ErrorFrame.from_exception(
                    Overloaded(
                        f"client {peer} exceeds {self.client_rate:g} "
                        "requests/second",
                        retry_after_ms=retry_after,
                        scope="client",
                    )
                )
        return None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        peername = writer.get_extra_info("peername")
        peer = peername[0] if peername else "?"
        self._counters["connections"] += 1
        self._counters["connections_open"] += 1
        assert self._draining is not None
        try:
            while not self._draining.is_set():
                read = asyncio.ensure_future(reader.readline())
                drain = asyncio.ensure_future(self._draining.wait())
                try:
                    await asyncio.wait(
                        {read, drain}, return_when=asyncio.FIRST_COMPLETED
                    )
                finally:
                    drain.cancel()
                    if not read.done():
                        # Drain won the race: stop reading; no frame is
                        # lost (the request was never accepted).
                        read.cancel()
                        try:
                            await read
                        except (asyncio.CancelledError, Exception):
                            pass
                if not read.done() or read.cancelled():
                    break
                try:
                    line = read.result()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # frame longer than MAX_FRAME_BYTES
                    self._counters["errors"] += 1
                    frame = ErrorFrame(
                        "FrameTooLong",
                        f"request frame exceeds {MAX_FRAME_BYTES} bytes",
                    ).to_dict()
                    await self._write(writer, frame)
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                frame = await self._process_line(line, peer)
                await self._write(writer, frame)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._counters["connections_open"] -= 1
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, frame: dict) -> None:
        # sort_keys: introspection payloads promise a stable key order
        # to scrapers and diffing tools; response frames are small, so
        # sorting everything costs nothing measurable.
        writer.write(
            json.dumps(frame, sort_keys=True).encode("utf-8") + b"\n"
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # Frame processing
    # ------------------------------------------------------------------
    async def _process_line(self, line: bytes, peer: str = "?") -> dict:
        started = time.perf_counter()
        timer = StageTimer() if self._observing else None
        request, frame = await self._process_frame(line, peer, timer)
        if self._observing:
            self._observe(request, frame, peer, started, timer)
        return frame

    async def _process_frame(
        self,
        line: bytes,
        peer: str,
        timer: Optional[StageTimer],
    ) -> tuple[Optional[DecideRequest], dict]:
        self._counters["frames"] += 1
        request: Optional[DecideRequest] = None
        try:
            request = DecideRequest.from_dict(
                json.loads(line.decode("utf-8"))
            )
        except Exception as error:
            self._counters["errors"] += 1
            snippet = line.decode("utf-8", "replace").strip()
            return request, ErrorFrame.from_exception(
                error, line=snippet[:200]
            ).to_dict()
        if request.op in ("ping", "stats", "metrics"):
            self._counters["responses"] += 1
            return request, introspection_frame(
                request,
                self.pool,
                metrics=self.metrics,
                server=self.server_stats(),
            )
        state = self._client_state(peer) if self._quotas_on else None
        shed = self._admit(peer, state)
        if shed is not None:
            self._counters["errors"] += 1
            self._counters["overloaded"] += 1
            if request.id is not None:
                shed = dataclasses.replace(shed, id=request.id)
            return request, shed.to_dict()
        assert self._gate is not None and self._executor is not None
        acquired = False
        if self.shed_after_ms is not None:
            try:
                await asyncio.wait_for(
                    self._gate.acquire(), self.shed_after_ms / 1000.0
                )
                acquired = True
            except asyncio.TimeoutError:
                self._counters["errors"] += 1
                self._counters["overloaded"] += 1
                return request, ErrorFrame.from_exception(
                    Overloaded(
                        f"server gate saturated ({self.max_pending} "
                        "requests pending)",
                        retry_after_ms=self.shed_after_ms,
                        scope="server",
                    ),
                    id=request.id,
                ).to_dict()
        else:
            await self._gate.acquire()  # backpressure: wait, don't shed
            acquired = True
        budget = self.pool.budget_for(request) or Budget()
        self._budgets.add(budget)
        if state is not None:
            state.inflight += 1
        self._counters["in_flight"] += 1
        submitted = time.perf_counter()

        def work() -> object:
            previous = None
            if timer is not None:
                timer.add("queue", time.perf_counter() - submitted)
                previous = activate(timer)
            try:
                return self.pool.process(request, budget=budget)
            finally:
                if timer is not None:
                    deactivate(previous)

        try:
            response = await asyncio.get_running_loop().run_in_executor(
                self._executor, work
            )
        except Exception as error:
            self._counters["errors"] += 1
            if isinstance(error, DeadlineExceeded):
                self._counters["deadline_exceeded"] += 1
            return request, ErrorFrame.from_exception(
                error, id=request.id
            ).to_dict()
        finally:
            self._counters["in_flight"] -= 1
            self._budgets.discard(budget)
            if state is not None:
                state.inflight -= 1
            if acquired:
                self._gate.release()
        self._counters["responses"] += 1
        return request, response.to_dict()

    @property
    def _quotas_on(self) -> bool:
        return (
            self.client_rate is not None
            or self.max_inflight_per_client is not None
        )

    def __repr__(self) -> str:
        state = "listening" if self._server is not None else "stopped"
        return f"DecideServer({self.host}:{self.port}, {state})"


async def run_server(
    pool: SessionPool,
    *,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    workers: int = DEFAULT_WORKERS,
    max_pending: int = DEFAULT_MAX_PENDING,
    client_rate: Optional[float] = None,
    client_burst: float = 8.0,
    max_inflight_per_client: Optional[int] = None,
    shed_after_ms: Optional[float] = None,
    drain_timeout: Optional[float] = None,
    ready: Optional[asyncio.Event] = None,
    metrics: Optional[MetricsRegistry] = None,
    request_log: Optional[RequestLogger] = None,
) -> None:
    """Start a `DecideServer` and serve until cancelled.

    ``ready`` (when given) is set once the socket is bound — test and
    benchmark harnesses wait on it instead of polling the port.
    Cancellation (or SIGTERM via the CLI) triggers a graceful drain
    bounded by ``drain_timeout``.
    """
    server = DecideServer(
        pool,
        host=host,
        port=port,
        workers=workers,
        max_pending=max_pending,
        client_rate=client_rate,
        client_burst=client_burst,
        max_inflight_per_client=max_inflight_per_client,
        shed_after_ms=shed_after_ms,
        metrics=metrics,
        request_log=request_log,
    )
    await server.start()
    if ready is not None:
        ready.set()
    try:
        await server.serve_forever()
    finally:
        await server.close(drain_timeout=drain_timeout)
