"""Consistent hashing of schema fingerprints over serve workers.

The fleet dispatcher routes every request by the *routing key* of its
schema (the content fingerprint once learned, the canonical serialized
spelling before that) so that all traffic for one schema lands on one
worker — that worker's `SessionPool` then holds the compiled artifacts
and decision caches for its shard, and no other worker wastes memory
on them.

The ring is the classic Karger construction: every worker is hashed to
``replicas`` virtual points on a circle keyed by SHA-256 (stable across
processes and Python builds — `hash()` is salted and useless here), and
a key routes to the first worker point at or after the key's own hash.
Properties the fleet relies on:

* **determinism** — two dispatchers with the same worker set route a
  key identically (no coordination needed);
* **minimal movement** — removing a worker reassigns *only* that
  worker's keys (its arcs fall to the next point on the circle);
  re-adding it restores exactly the original assignment, so a restarted
  worker reclaims its still-warm shard;
* **balance** — with the default 64 virtual points per worker the
  largest shard stays within a small factor of the mean.

The ring itself is a pure data structure (no locks, no I/O); the
dispatcher mutates it only from the event loop.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional

__all__ = ["DEFAULT_REPLICAS", "HashRing"]

#: Virtual points per worker; 64 keeps the max/mean shard ratio low
#: while add/remove stay O(replicas log n).
DEFAULT_REPLICAS = 64


def _point(data: str) -> int:
    """A stable 64-bit position on the circle."""
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring mapping routing keys to worker ids.

    ::

        ring = HashRing()
        ring.add("worker-0"); ring.add("worker-1")
        ring.node_for(fingerprint)      # -> "worker-0" | "worker-1"
        ring.remove("worker-0")         # worker-1 inherits its arcs
    """

    def __init__(self, replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: set[str] = set()
        #: Sorted virtual points and the node owning each, kept aligned.
        self._points: list[int] = []
        self._owners: list[str] = []

    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        """Add a worker (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _point(f"{node}#{replica}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Remove a worker (idempotent); its arcs fall to the next
        point on the circle."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, __ in keep]
        self._owners = [owner for __, owner in keep]

    def node_for(self, key: str) -> Optional[str]:
        """The worker owning ``key``, or None when the ring is empty."""
        if not self._points:
            return None
        index = bisect.bisect(self._points, _point(key))
        if index == len(self._points):
            index = 0  # wrap around the circle
        return self._owners[index]

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def assignments(self, keys: Iterable[str]) -> dict[str, list[str]]:
        """Group ``keys`` by owning worker (observability helper: the
        fleet's ``stats`` frame reports the live shard map with it)."""
        shards: dict[str, list[str]] = {node: [] for node in self._nodes}
        for key in keys:
            owner = self.node_for(key)
            if owner is not None:
                shards[owner].append(key)
        return shards

    def __repr__(self) -> str:
        return (
            f"HashRing({len(self._nodes)} nodes, "
            f"{self.replicas} replicas)"
        )
