"""The prefork worker fleet: sharded multi-process serving.

The decision core is CPU-bound pure Python, so one interpreter — no
matter how many threads — decides on one core.  The fleet is the scale
step past that: N worker processes (each the existing ``serve`` loop —
a `DecideServer` over a `SessionPool` — spawned and restarted by the
PR-6 supervisor machinery, one `Supervisor` per worker) behind an
asyncio **dispatcher** that speaks the same JSON-lines wire protocol
and routes every frame by consistent hashing of its schema fingerprint
(`repro.server.hashring`).  Sharding is the point, not just
parallelism: all traffic for one schema lands on one worker, so that
worker's compiled artifacts and decision caches stay hot on its shard
and the fleet's *aggregate* live-fingerprint capacity grows with N.

**Routing keys.**  The dispatcher never compiles schemas.  A frame's
routing key is the canonical serialization of its inline schema (or
``""`` for the pinned default) — until the first response for that
spelling comes back carrying the *content* fingerprint, which the
dispatcher learns (bounded table) so every spelling of one schema
converges onto one shard, exactly like the pool's own two-level
routing.

**Failure semantics.**  A worker death (or dropped connection) fails
every in-flight frame on it with a typed, retryable
`repro.runtime.WorkerLost` error — never a wrong answer, never a hang
(the `tests/fleet/` battery enforces the same invariant as
`tests/faults/`).  The worker is evicted from the ring immediately;
its supervisor restarts it with backoff, the new generation warms its
manifest, reports ready, and is re-admitted — reclaiming its original
arcs (consistent hashing moves no other shard).  An empty ring sheds
with retryable ``Overloaded`` frames.

**Warm starts.**  Each worker precompiles the ``--warm`` manifest
*before* emitting its readiness line, hence before it joins the ring:
a restarted worker never serves its shard colder than the manifest.

**Stats.**  ``op: stats`` aggregates fleet-wide: dispatcher routing
counters, the live ring, per-worker supervision state, and each
worker's own stats frame (whose pool ``per_fingerprint`` map is the
per-shard heat).

::

    python -m repro fleet --workers 4 --port 8765 --warm manifest.json

or embedded (the benchmark and the test battery drive it this way)::

    dispatcher = FleetDispatcher(port=0)
    await dispatcher.start()
    fleet = Fleet([WorkerSpec(...) for _ in range(4)], dispatcher)
    await fleet.start()
    ...
    await fleet.close(drain_timeout=10.0)
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
import threading
import time
from collections import OrderedDict, deque
from typing import Awaitable, Callable, Optional

from ..io import DecideRequest, ErrorFrame, json_safe
from ..obs.logs import RequestLogger
from ..obs.registry import MetricsRegistry, merge_snapshots
from ..runtime import Overloaded, WorkerLost
from .hashring import DEFAULT_REPLICAS, HashRing
from .server import MAX_FRAME_BYTES
from .supervisor import CrashLoopError, Supervisor, WorkerSpec

__all__ = ["Fleet", "FleetDispatcher", "run_fleet"]

#: Retry hint stamped on WorkerLost/empty-ring errors: long enough for
#: the ring to rebalance, short enough that clients re-probe promptly.
DEFAULT_RETRY_AFTER_MS = 100.0
#: Bound on learned spelling->fingerprint routes.
MAX_LEARNED_ROUTES = 4096
#: Per-worker stats probe timeout inside the aggregated stats frame.
STATS_TIMEOUT_S = 5.0
#: Worker response lines (stats, plans) can outgrow request frames.
CHANNEL_LIMIT_BYTES = 8 * MAX_FRAME_BYTES


class _Channel:
    """One TCP connection to a worker, multiplexing requests FIFO.

    The worker processes frames on one connection strictly in order,
    so matching responses to requests needs no correlation ids: a
    deque of futures, resolved in arrival order.  A connection error
    fails every pending future with `WorkerLost` — the caller turns
    that into a retryable error frame.
    """

    def __init__(
        self,
        worker_id: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        on_lost: Callable[[], None],
    ) -> None:
        self.worker_id = worker_id
        self._reader = reader
        self._writer = writer
        self._on_lost = on_lost
        self._pending: deque[asyncio.Future] = deque()
        self._write_lock = asyncio.Lock()
        self._closed = False
        self._read_task = asyncio.ensure_future(self._read_loop())

    async def request(self, line: bytes) -> dict:
        """Send one newline-framed request; await its response dict.

        Raises `WorkerLost` if the connection is (or goes) down before
        the response arrives.
        """
        if self._closed:
            raise WorkerLost(
                f"worker {self.worker_id} is gone", worker=self.worker_id
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        async with self._write_lock:
            if self._closed:
                raise WorkerLost(
                    f"worker {self.worker_id} is gone",
                    worker=self.worker_id,
                )
            # Append under the write lock so the pending order matches
            # the wire order exactly.
            self._pending.append(future)
            try:
                self._writer.write(line.rstrip(b"\n") + b"\n")
                await self._writer.drain()
            except (ConnectionError, OSError):
                self._pending.remove(future)
                self._lost()
                raise WorkerLost(
                    f"worker {self.worker_id} connection dropped on send",
                    worker=self.worker_id,
                    retry_after_ms=DEFAULT_RETRY_AFTER_MS,
                ) from None
        return await future

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    payload = json.loads(line)
                except ValueError:
                    break  # a worker emitting garbage is a lost worker
                if self._pending:
                    future = self._pending.popleft()
                    if not future.done():
                        future.set_result(payload)
        except (ConnectionError, OSError, asyncio.LimitOverrunError):
            pass
        except asyncio.CancelledError:
            pass
        finally:
            self._lost()

    def _lost(self) -> None:
        if self._closed:
            return
        self._closed = True
        while self._pending:
            future = self._pending.popleft()
            if not future.done():
                future.set_exception(
                    WorkerLost(
                        f"worker {self.worker_id} lost with request "
                        "in flight",
                        worker=self.worker_id,
                        retry_after_ms=DEFAULT_RETRY_AFTER_MS,
                    )
                )
        try:
            self._writer.close()
        except Exception:
            pass
        self._on_lost()

    async def close(self) -> None:
        """Tear the channel down, failing anything still pending."""
        self._lost()
        self._read_task.cancel()
        try:
            await self._read_task
        except (asyncio.CancelledError, Exception):
            pass

    @property
    def closed(self) -> bool:
        return self._closed


class _WorkerClient:
    """The dispatcher's view of one live worker: its address plus a
    small pool of channels served round-robin (one worker connection
    is strictly serial — the worker decides frames on a connection in
    order — so ``channels`` bounds that worker's usable concurrency)."""

    def __init__(
        self, worker_id: str, host: str, port: int, pid: Optional[int]
    ) -> None:
        self.worker_id = worker_id
        self.host = host
        self.port = port
        self.pid = pid
        self.requests = 0
        self.channels: list[_Channel] = []
        self._cursor = itertools.count()

    async def connect(
        self, channels: int, on_lost: Callable[[], None]
    ) -> None:
        for __ in range(channels):
            reader, writer = await asyncio.open_connection(
                self.host, self.port, limit=CHANNEL_LIMIT_BYTES
            )
            self.channels.append(
                _Channel(self.worker_id, reader, writer, on_lost)
            )

    async def request(
        self, line: bytes, timeout: Optional[float] = None
    ) -> dict:
        self.requests += 1
        live = [c for c in self.channels if not c.closed]
        if not live:
            raise WorkerLost(
                f"worker {self.worker_id} has no live connections",
                worker=self.worker_id,
                retry_after_ms=DEFAULT_RETRY_AFTER_MS,
            )
        channel = live[next(self._cursor) % len(live)]
        if timeout is None:
            return await channel.request(line)
        return await asyncio.wait_for(channel.request(line), timeout)

    async def close(self) -> None:
        channels, self.channels = self.channels, []
        for channel in channels:
            await channel.close()

    def describe(self) -> dict:
        return {
            "address": f"{self.host}:{self.port}",
            "pid": self.pid,
            "channels": len(self.channels),
            "channels_live": sum(
                1 for c in self.channels if not c.closed
            ),
            "requests_routed": self.requests,
        }


class FleetDispatcher:
    """The fleet's front door: a JSON-lines asyncio server that owns
    the consistent-hash ring and forwards each frame to its
    shard's worker.

    Process management lives elsewhere (`Fleet`); the dispatcher only
    knows addresses.  `add_worker` / `remove_worker` are the admission
    API — the fleet calls them from supervisor threads via the event
    loop, tests call them directly with in-process servers.  Both are
    idempotent, and re-adding a known worker id atomically replaces
    its old address (the restart path).
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        channels_per_worker: int = 4,
        replicas: int = DEFAULT_REPLICAS,
        info_provider: Optional[Callable[[], dict]] = None,
    ) -> None:
        if channels_per_worker < 1:
            raise ValueError(
                "channels_per_worker must be >= 1, got "
                f"{channels_per_worker}"
            )
        self.host = host
        self.port = port
        self.channels_per_worker = channels_per_worker
        self.ring = HashRing(replicas)
        #: Extra "fleet" stats section (supervision state) — wired by
        #: `Fleet`, absent for bare dispatchers.
        self.info_provider = info_provider
        self.metrics: Optional[MetricsRegistry] = None
        self._request_log: Optional[RequestLogger] = None
        self._workers: dict[str, _WorkerClient] = {}
        #: canonical schema spelling -> learned content fingerprint.
        self._routes: OrderedDict[str, str] = OrderedDict()
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining: Optional[asyncio.Event] = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._counters = {
            "connections": 0,
            "connections_open": 0,
            "frames": 0,
            "responses": 0,
            "errors": 0,
            "routed": 0,
            "worker_lost": 0,
            "no_worker": 0,
            "routes_learned": 0,
            "workers_added": 0,
            "workers_removed": 0,
        }

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def register_metrics(self, registry: MetricsRegistry) -> None:
        """Adopt ``registry``: dispatcher-level request instruments
        plus the ring/routing counters as the ``fleet`` provider
        (DESIGN.md §3c).  Worker-level series stay on the workers and
        are fetched/merged per ``op: metrics`` probe."""
        self.metrics = registry
        self._m_requests = registry.counter(
            "repro_fleet_requests_total",
            "Frames the dispatcher answered, by op and outcome.",
            labels=("op", "outcome"),
        )
        self._m_request_ms = registry.histogram(
            "repro_fleet_request_ms",
            "Dispatcher wall time per frame (includes worker RTT), ms.",
            labels=("op",),
        )
        registry.register_provider("fleet", self.fleet_stats)

    def set_request_log(self, request_log: Optional[RequestLogger]) -> None:
        self._request_log = request_log

    def fleet_stats(self) -> dict:
        """The ring/routing stats block (``op: stats`` ``fleet``
        section and the registry's ``fleet`` provider)."""
        fleet: dict = {
            "workers": len(self._workers),
            "ring": {
                "nodes": sorted(self.ring.nodes),
                "replicas": self.ring.replicas,
            },
            "counters": dict(self._counters),
            "routes": len(self._routes),
            "shards": self.ring.assignments(self._routes.values()),
            "draining": self.draining,
        }
        if self.info_provider is not None:
            fleet["supervision"] = self.info_provider()
        return fleet

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "FleetDispatcher":
        if self._server is not None:
            return self
        self._draining = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_FRAME_BYTES,
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def draining(self) -> bool:
        return self._draining is not None and self._draining.is_set()

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def close(self, *, drain_timeout: Optional[float] = None) -> None:
        """Stop accepting, drain client connections, drop workers.

        Mirrors `DecideServer.close`: in-flight forwarded frames get
        ``drain_timeout`` to come back from their workers (the workers
        are being SIGTERMed in parallel and cancel long work
        themselves), then remaining connection tasks are
        force-cancelled and every worker channel torn down.
        """
        if self._draining is not None:
            self._draining.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        tasks = set(self._conn_tasks)
        if tasks:
            __, pending = await asyncio.wait(
                tasks, timeout=drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending, timeout=1.0)
        for worker_id in list(self._workers):
            await self.remove_worker(worker_id)

    # ------------------------------------------------------------------
    # Worker admission
    # ------------------------------------------------------------------
    async def add_worker(
        self,
        worker_id: str,
        host: str,
        port: int,
        *,
        pid: Optional[int] = None,
    ) -> None:
        """Connect to a ready worker and admit it to the ring.

        A failure to connect raises (and leaves the ring unchanged);
        a known ``worker_id`` is replaced atomically — the restart
        path, which by consistent hashing hands the new generation
        exactly the arcs the old one owned.
        """
        client = _WorkerClient(worker_id, host, port, pid)
        await client.connect(
            self.channels_per_worker,
            lambda: self._on_channel_lost(worker_id, client),
        )
        previous = self._workers.get(worker_id)
        self._workers[worker_id] = client
        self.ring.add(worker_id)
        self._counters["workers_added"] += 1
        if previous is not None:
            await previous.close()

    async def remove_worker(self, worker_id: str) -> None:
        """Evict a worker: drop it from the ring, fail its in-flight
        frames with `WorkerLost` (idempotent)."""
        self.ring.remove(worker_id)
        client = self._workers.pop(worker_id, None)
        if client is not None:
            self._counters["workers_removed"] += 1
            await client.close()

    def _on_channel_lost(
        self, worker_id: str, client: _WorkerClient
    ) -> None:
        """A channel hit EOF/error: evict the worker eagerly (don't
        wait for the supervisor's poll to notice the death) so new
        frames reroute instead of piling more `WorkerLost` errors."""
        if self._workers.get(worker_id) is not client:
            return  # already replaced by a newer generation
        if all(channel.closed for channel in client.channels):
            task = asyncio.ensure_future(self.remove_worker(worker_id))
            # Keep a reference so the cleanup cannot be GC-cancelled.
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)

    @property
    def workers(self) -> tuple[str, ...]:
        return tuple(self._workers)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def routing_key(self, request: DecideRequest) -> str:
        """The ring key for one frame: the learned content fingerprint
        when known, else the canonical serialized spelling (``""`` for
        the default schema)."""
        if request.schema is None:
            return ""
        spelling = json.dumps(request.schema, sort_keys=True)
        return self._routes.get(spelling, spelling)

    def _learn_route(self, request: DecideRequest, response: dict) -> None:
        if request.schema is None:
            return
        fingerprint = response.get("fingerprint")
        if not fingerprint or not isinstance(fingerprint, str):
            return
        spelling = json.dumps(request.schema, sort_keys=True)
        if self._routes.get(spelling) == fingerprint:
            self._routes.move_to_end(spelling)
            return
        self._routes[spelling] = fingerprint
        self._routes.move_to_end(spelling)
        self._counters["routes_learned"] += 1
        while len(self._routes) > MAX_LEARNED_ROUTES:
            self._routes.popitem(last=False)

    # ------------------------------------------------------------------
    # Connection handling (same staging as DecideServer)
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._counters["connections"] += 1
        self._counters["connections_open"] += 1
        assert self._draining is not None
        try:
            while not self._draining.is_set():
                read = asyncio.ensure_future(reader.readline())
                drain = asyncio.ensure_future(self._draining.wait())
                try:
                    await asyncio.wait(
                        {read, drain}, return_when=asyncio.FIRST_COMPLETED
                    )
                finally:
                    drain.cancel()
                    if not read.done():
                        read.cancel()
                        try:
                            await read
                        except (asyncio.CancelledError, Exception):
                            pass
                if not read.done() or read.cancelled():
                    break
                try:
                    line = read.result()
                except (asyncio.LimitOverrunError, ValueError):
                    self._counters["errors"] += 1
                    frame = ErrorFrame(
                        "FrameTooLong",
                        f"request frame exceeds {MAX_FRAME_BYTES} bytes",
                    ).to_dict()
                    await self._write(writer, frame)
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                frame = await self._process_line(line)
                await self._write(writer, frame)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._counters["connections_open"] -= 1
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, frame: dict) -> None:
        # sort_keys: aggregated stats/metrics frames promise a stable
        # key order to scrapers and diffing tools.
        writer.write(
            json.dumps(frame, sort_keys=True).encode("utf-8") + b"\n"
        )
        await writer.drain()

    async def _process_line(self, line: bytes) -> dict:
        started = time.perf_counter()
        request, frame = await self._process_request(line)
        if self.metrics is not None or self._request_log is not None:
            self._observe(request, frame, started)
        return frame

    def _observe(
        self,
        request: Optional[DecideRequest],
        frame: dict,
        started: float,
    ) -> None:
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        op = request.op if request is not None else "invalid"
        error = frame.get("error")
        failed = isinstance(error, dict) and "decision" not in frame
        outcome = "error" if failed else "ok"
        if self.metrics is not None:
            self._m_requests.inc(op=op, outcome=outcome)
            self._m_request_ms.observe(elapsed_ms, op=op)
        if self._request_log is not None:
            self._request_log.log(
                peer="dispatcher",
                op=op,
                id=frame.get("id"),
                fingerprint=frame.get("fingerprint") or None,
                outcome=outcome,
                error_type=error.get("type") if failed else None,
                retryable=error.get("retryable") if failed else None,
                retry_after_ms=(
                    error.get("retry_after_ms") if failed else None
                ),
                elapsed_ms=round(elapsed_ms, 3),
            )

    async def _process_request(
        self, line: bytes
    ) -> tuple[Optional[DecideRequest], dict]:
        self._counters["frames"] += 1
        request: Optional[DecideRequest] = None
        try:
            request = DecideRequest.from_dict(
                json.loads(line.decode("utf-8"))
            )
        except Exception as error:
            self._counters["errors"] += 1
            snippet = line.decode("utf-8", "replace").strip()
            return request, ErrorFrame.from_exception(
                error, line=snippet[:200]
            ).to_dict()
        if request.op == "ping":
            self._counters["responses"] += 1
            frame: dict = {"op": "pong"}
            if request.id is not None:
                frame["id"] = request.id
            return request, frame
        if request.op == "stats":
            self._counters["responses"] += 1
            return request, await self._stats_frame(request)
        if request.op == "metrics":
            self._counters["responses"] += 1
            return request, await self._metrics_frame(request)
        return request, await self._forward(request, line)

    async def _forward(self, request: DecideRequest, line: bytes) -> dict:
        key = self.routing_key(request)
        worker_id = self.ring.node_for(key)
        client = (
            self._workers.get(worker_id) if worker_id is not None else None
        )
        if client is None:
            self._counters["errors"] += 1
            self._counters["no_worker"] += 1
            return ErrorFrame.from_exception(
                Overloaded(
                    "no live workers in the fleet ring",
                    retry_after_ms=DEFAULT_RETRY_AFTER_MS,
                    scope="fleet",
                ),
                id=request.id,
            ).to_dict()
        self._counters["routed"] += 1
        try:
            response = await client.request(line)
        except WorkerLost as error:
            self._counters["errors"] += 1
            self._counters["worker_lost"] += 1
            return ErrorFrame.from_exception(error, id=request.id).to_dict()
        self._counters["responses"] += 1
        self._learn_route(request, response)
        return response

    # ------------------------------------------------------------------
    # Aggregated stats
    # ------------------------------------------------------------------
    async def _stats_frame(self, request: DecideRequest) -> dict:
        workers = dict(self._workers)
        probes = {
            worker_id: asyncio.ensure_future(
                client.request(b'{"op": "stats"}', timeout=STATS_TIMEOUT_S)
            )
            for worker_id, client in workers.items()
        }
        if probes:
            await asyncio.wait(probes.values())
        per_worker = []
        for worker_id, client in workers.items():
            entry: dict = {"worker": worker_id, **client.describe()}
            probe = probes[worker_id]
            error = probe.exception() if probe.done() else None
            if error is not None:
                entry["error"] = {
                    "type": type(error).__name__,
                    "message": str(error),
                }
            else:
                entry["stats"] = probe.result()
            per_worker.append(entry)
        frame: dict = {
            "op": "stats",
            "fleet": self.fleet_stats(),
            "workers": per_worker,
        }
        if request.id is not None:
            frame["id"] = request.id
        return json_safe(frame)

    async def _metrics_frame(self, request: DecideRequest) -> dict:
        """Fleet-aggregated ``op: metrics``: probe every live worker,
        return its snapshot labelled by worker id / pid / shard
        assignment, plus a bucket-wise merged ``aggregate`` (counters
        summed, histogram buckets merged, percentiles re-estimated
        from the merged counts) and the dispatcher's own registry."""
        workers = dict(self._workers)
        probes = {
            worker_id: asyncio.ensure_future(
                client.request(
                    b'{"op": "metrics"}', timeout=STATS_TIMEOUT_S
                )
            )
            for worker_id, client in workers.items()
        }
        if probes:
            await asyncio.wait(probes.values())
        shards = self.ring.assignments(self._routes.values())
        per_worker = []
        snapshots = []
        for worker_id, client in workers.items():
            entry: dict = {
                "worker": worker_id,
                **client.describe(),
                "shards": shards.get(worker_id, []),
            }
            probe = probes[worker_id]
            error = probe.exception() if probe.done() else None
            if error is not None:
                entry["error"] = {
                    "type": type(error).__name__,
                    "message": str(error),
                }
            else:
                reply = probe.result()
                entry["pid"] = reply.get("pid", entry.get("pid"))
                entry["metrics"] = reply.get("metrics")
                if isinstance(entry["metrics"], dict):
                    snapshots.append(entry["metrics"])
            per_worker.append(entry)
        frame: dict = {
            "op": "metrics",
            "pid": os.getpid(),
            "fleet": self.fleet_stats(),
            "workers": per_worker,
            "aggregate": merge_snapshots(snapshots),
        }
        if self.metrics is not None:
            frame["dispatcher"] = self.metrics.snapshot()
        if request.id is not None:
            frame["id"] = request.id
        return json_safe(frame)

    def __repr__(self) -> str:
        state = "listening" if self._server is not None else "stopped"
        return (
            f"FleetDispatcher({self.host}:{self.port}, {state}, "
            f"{len(self._workers)} workers)"
        )


class _Member:
    """One fleet slot: a spec, its supervisor, and the thread the
    supervisor runs on."""

    def __init__(self, worker_id: str, spec: WorkerSpec) -> None:
        self.worker_id = worker_id
        self.spec = spec
        self.supervisor: Optional[Supervisor] = None
        self.thread: Optional[threading.Thread] = None
        self.failure: Optional[BaseException] = None


class Fleet:
    """N supervised serve workers admitted to one dispatcher's ring.

    Each worker gets its own `Supervisor` (the per-worker supervisor
    registry) running on its own thread; the supervisor's
    ``on_worker_up`` hook waits for the worker's readiness handshake —
    warm manifest compiled, socket bound — and only then admits it to
    the ring, and ``on_worker_down`` evicts it the moment the watch
    ends.  A worker whose handshake never arrives is terminated, which
    feeds the normal crash/backoff/breaker accounting; a tripped
    breaker takes that slot out of the fleet permanently (visible in
    ``stats``) while the rest keep serving.
    """

    def __init__(
        self,
        specs: list[WorkerSpec],
        dispatcher: FleetDispatcher,
        *,
        admit_timeout_s: float = 30.0,
    ) -> None:
        if not specs:
            raise ValueError("a fleet needs at least one WorkerSpec")
        self.dispatcher = dispatcher
        self.admit_timeout_s = admit_timeout_s
        self._members = [
            _Member(f"worker-{index}", spec)
            for index, spec in enumerate(specs)
        ]
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        if dispatcher.info_provider is None:
            dispatcher.info_provider = self.describe

    # ------------------------------------------------------------------
    def _admit(self, member: _Member, worker: object) -> None:
        """Supervisor-thread side of admission: block on the readiness
        handshake, then hand the discovered address to the event
        loop."""
        ready = worker.wait_ready(member.spec.ready_timeout_s)
        if ready is None:
            # No handshake: treat as a crash (terminate; the watch sees
            # the death and applies backoff/breaker).
            worker.terminate()
            return
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self.dispatcher.add_worker(
                member.worker_id,
                ready.host,
                ready.port,
                pid=getattr(worker, "pid", None),
            ),
            self._loop,
        )
        try:
            future.result(timeout=self.admit_timeout_s)
        except Exception:
            # Could not connect/admit: recycle the worker through the
            # crash path rather than leaving it dark.
            worker.terminate()

    def _evict(self, member: _Member) -> None:
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self.dispatcher.remove_worker(member.worker_id), self._loop
        )
        try:
            future.result(timeout=self.admit_timeout_s)
        except Exception:
            pass  # the loop is shutting down; channels die with it

    def _supervise(self, member: _Member) -> None:
        assert member.supervisor is not None
        try:
            member.supervisor.run()
        except CrashLoopError as error:
            member.failure = error
        except Exception as error:  # pragma: no cover - defensive
            member.failure = error

    # ------------------------------------------------------------------
    async def start(
        self, *, min_workers: Optional[int] = None, timeout_s: float = 120.0
    ) -> int:
        """Spawn every worker and wait until ``min_workers`` (default:
        all) are admitted to the ring; returns the admitted count.

        Raises `RuntimeError` when the quorum is not reached in
        ``timeout_s`` — with every supervisor stopped, so no orphan
        processes outlive the failure.
        """
        self._loop = asyncio.get_running_loop()
        quorum = len(self._members) if min_workers is None else min_workers
        for member in self._members:
            member.supervisor = member.spec.supervisor(
                on_worker_up=lambda worker, m=member: self._admit(m, worker),
                on_worker_down=lambda worker, m=member: self._evict(m),
            )
            member.thread = threading.Thread(
                target=self._supervise,
                args=(member,),
                name=f"supervise-{member.worker_id}",
                daemon=True,
            )
            member.thread.start()
        deadline = self._loop.time() + timeout_s
        while True:
            admitted = len(self.dispatcher.workers)
            if admitted >= quorum:
                return admitted
            if all(m.failure is not None for m in self._members):
                await self.close()
                raise RuntimeError(
                    "every fleet worker crash-looped: "
                    + "; ".join(
                        f"{m.worker_id}: {m.failure}" for m in self._members
                    )
                )
            if self._loop.time() >= deadline:
                await self.close()
                raise RuntimeError(
                    f"fleet quorum not reached: {admitted}/{quorum} "
                    f"workers ready within {timeout_s:g}s"
                )
            await asyncio.sleep(0.05)

    async def close(self, *, drain_timeout: Optional[float] = None) -> None:
        """Drain the dispatcher, then stop every supervisor (SIGTERM →
        worker graceful drain → kill after the grace period)."""
        await self.dispatcher.close(drain_timeout=drain_timeout)
        for member in self._members:
            if member.supervisor is not None:
                member.supervisor.stop()
        loop = asyncio.get_running_loop()
        for member in self._members:
            thread = member.thread
            if thread is not None and thread.is_alive():
                await loop.run_in_executor(None, thread.join)

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Per-worker supervision state (the stats frame's
        ``fleet.supervision`` section)."""
        report = {}
        for member in self._members:
            supervisor = member.supervisor
            worker = supervisor.worker if supervisor is not None else None
            state = "starting"
            if member.failure is not None:
                state = "crash-loop"
            elif member.worker_id in self.dispatcher.workers:
                state = "in-ring"
            elif worker is not None and worker.is_alive():
                state = "spawned"
            elif supervisor is not None and supervisor.generation > 0:
                state = "down"
            report[member.worker_id] = {
                "state": state,
                "generation": getattr(supervisor, "generation", 0),
                "restarts": getattr(supervisor, "restarts", 0),
                "pid": getattr(worker, "pid", None),
                "failure": (
                    str(member.failure)
                    if member.failure is not None
                    else None
                ),
            }
        return report

    @property
    def members(self) -> tuple[str, ...]:
        return tuple(member.worker_id for member in self._members)


async def run_fleet(
    specs: list[WorkerSpec],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    channels_per_worker: int = 4,
    drain_timeout: Optional[float] = None,
    ready: Optional[Callable[[FleetDispatcher], Awaitable[None]]] = None,
    min_workers: Optional[int] = None,
    metrics: Optional[MetricsRegistry] = None,
    request_log: Optional[RequestLogger] = None,
) -> None:
    """Start a dispatcher + fleet and serve until cancelled; the CLI
    and the smoke harness sit on this.  ``ready`` (when given) is
    awaited once the quorum is admitted — the CLI emits its readiness
    frame there."""
    dispatcher = FleetDispatcher(
        host=host, port=port, channels_per_worker=channels_per_worker
    )
    if metrics is not None:
        dispatcher.register_metrics(metrics)
    dispatcher.set_request_log(request_log)
    await dispatcher.start()
    fleet = Fleet(specs, dispatcher)
    try:
        await fleet.start(min_workers=min_workers)
        if ready is not None:
            await ready(dispatcher)
        await dispatcher.serve_forever()
    finally:
        await fleet.close(drain_timeout=drain_timeout)
