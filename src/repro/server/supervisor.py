"""A crash-tolerant supervisor for serve workers.

The process-management half of the fleet (`repro.server.fleet` is the
routing half): one `Supervisor` owns one worker (the serve loop in a
child process), watches its liveness and — optionally — its health
over the wire (``op: ping``), and restarts it when it dies:

* **jittered exponential backoff** between restarts
  (`BackoffPolicy`): crash n waits ``min(cap, base * 2^(n-1))``
  seconds, scaled by a uniform ±jitter factor so a fleet of
  supervisors never thunders back in lockstep;
* **crash-loop breaker** (`BreakerPolicy`): more than ``max_crashes``
  crashes inside a sliding ``window_s`` trips the breaker —
  `Supervisor.run` raises `CrashLoopError` instead of burning CPU on a
  worker that can never come up (a bad schema, a bound port);
* **health-check watchdog**: a failing health probe (``health_failures``
  consecutive misses) is treated exactly like a crash — the worker is
  terminated and restarted under the same backoff/breaker accounting.

Everything time- and process-shaped is injectable (``spawn``,
``health_check``, ``clock``, ``sleep``, ``rng``), so the restart and
breaker logic is tested deterministically with fake workers and a fake
clock; the real path (`serve_spawn` / `WorkerSpec.spawn`) runs
``python -m repro serve ...`` in a subprocess, which inherits the
CLI's SIGTERM graceful drain.

**Readiness discovery.**  The serve CLI emits a machine-parsable
`repro.io.ReadyFrame` JSON line on stdout once its socket is bound
(and any ``--warm`` manifest is compiled).  `WorkerHandle` — the
subprocess handle `serve_spawn` returns — skims the child's stdout for
that line, so a worker started on ``--port 0`` exposes its *actual*
ephemeral port via ``handle.wait_ready()`` / ``handle.address``: no
log scraping, no port races.  The health watchdog and the fleet
dispatcher both key off the discovered address.

**WorkerSpec.**  The spawn/health/backoff configuration of one worker
lives in a `WorkerSpec`, the single code path shared by ``python -m
repro supervise`` (one worker) and ``python -m repro fleet`` (N
workers): ``spec.supervisor()`` wires the spawn callable, the
address-following health probe, and the restart policies together.

::

    spec = WorkerSpec(schema="schema.json", port=0)
    supervisor = spec.supervisor()
    supervisor.run()        # blocks; Ctrl-C/stop() to leave
"""

from __future__ import annotations

import random
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..io import ReadyFrame

__all__ = [
    "BackoffPolicy",
    "BreakerPolicy",
    "CrashLoopError",
    "Supervisor",
    "WorkerHandle",
    "WorkerSpec",
    "serve_spawn",
    "tcp_ping",
]


@dataclass(frozen=True)
class BackoffPolicy:
    """Jittered exponential restart backoff."""

    base_s: float = 0.1
    cap_s: float = 5.0
    #: Fractional uniform jitter: delay is scaled by 1 ± jitter.
    jitter: float = 0.25

    def delay(self, consecutive_crashes: int, rng: random.Random) -> float:
        raw = min(
            self.cap_s,
            self.base_s * (2 ** max(0, consecutive_crashes - 1)),
        )
        if self.jitter <= 0:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass(frozen=True)
class BreakerPolicy:
    """The crash-loop breaker: give up past ``max_crashes`` crashes
    within a sliding ``window_s``-second window."""

    max_crashes: int = 5
    window_s: float = 30.0


class CrashLoopError(RuntimeError):
    """The worker crashed too often; the supervisor refuses to restart."""


def tcp_ping(host: str, port: int, timeout: float = 1.0) -> bool:
    """One ``op: ping`` round trip against a serving worker."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as conn:
            conn.settimeout(timeout)
            conn.sendall(b'{"op": "ping"}\n')
            data = b""
            while not data.endswith(b"\n"):
                chunk = conn.recv(4096)
                if not chunk:
                    return False
                data += chunk
        return b'"pong"' in data
    except OSError:
        return False


class WorkerHandle:
    """A subprocess serve worker with the ``multiprocessing.Process``
    surface the supervisor polls (``is_alive``/``exitcode``/
    ``terminate``/``kill``/``join``) plus readiness discovery.

    A daemon thread pumps the child's stdout looking for its
    `ReadyFrame` handshake line; `wait_ready` blocks until the frame
    arrives (returning it) or the child exits or the timeout passes
    (returning None).  After readiness, `address` is the worker's
    *bound* host/port — the ephemeral-port truth, not the requested
    one.  Everything else the child writes to stdout is discarded;
    stderr passes through untouched.
    """

    def __init__(self, process: subprocess.Popen) -> None:
        self._process = process
        self._ready: Optional[ReadyFrame] = None
        self._ready_event = threading.Event()
        self._pump_thread = threading.Thread(
            target=self._pump, name="worker-stdout", daemon=True
        )
        self._pump_thread.start()

    def _pump(self) -> None:
        stdout = self._process.stdout
        if stdout is None:  # pragma: no cover - spawn always pipes
            self._ready_event.set()
            return
        try:
            for line in stdout:
                if self._ready is None:
                    frame = ReadyFrame.from_line(line)
                    if frame is not None:
                        self._ready = frame
                        self._ready_event.set()
        except (OSError, ValueError):
            pass
        finally:
            # EOF (the child exited): unblock waiters either way.
            self._ready_event.set()

    # -- readiness -----------------------------------------------------
    def wait_ready(self, timeout: Optional[float] = None) -> Optional[ReadyFrame]:
        """Block until the readiness handshake (the frame), the child's
        exit, or the timeout (None)."""
        self._ready_event.wait(timeout)
        return self._ready

    @property
    def ready(self) -> Optional[ReadyFrame]:
        return self._ready

    @property
    def address(self) -> Optional[tuple[str, int]]:
        """The bound (host, port) once ready, else None."""
        if self._ready is None:
            return None
        return (self._ready.host, self._ready.port)

    @property
    def pid(self) -> int:
        return self._process.pid

    # -- the multiprocessing.Process surface ---------------------------
    def is_alive(self) -> bool:
        return self._process.poll() is None

    @property
    def exitcode(self) -> Optional[int]:
        return self._process.poll()

    def terminate(self) -> None:
        if self.is_alive():
            self._process.terminate()  # SIGTERM: graceful drain

    def kill(self) -> None:
        if self.is_alive():
            self._process.kill()

    def join(self, timeout: Optional[float] = None) -> None:
        try:
            self._process.wait(timeout)
        except subprocess.TimeoutExpired:
            pass

    def __repr__(self) -> str:
        state = "alive" if self.is_alive() else f"exit={self.exitcode}"
        return f"WorkerHandle(pid={self.pid}, {state})"


def serve_spawn(argv: list) -> Callable[[], WorkerHandle]:
    """A spawn callable running ``python -m repro serve <argv...>`` as
    a subprocess (a clean interpreter, no inherited event loops or
    locks), stdout piped so the readiness handshake — and with it an
    ephemeral port — is discoverable through the returned
    `WorkerHandle`."""

    def spawn() -> WorkerHandle:
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", *map(str, argv)],
            stdout=subprocess.PIPE,
            text=True,
        )
        return WorkerHandle(process)

    return spawn


@dataclass
class WorkerSpec:
    """The spawn/health/backoff configuration of one serve worker —
    the one code path ``supervise`` (a single worker) and ``fleet``
    (N workers) share.

    ``serve_args`` carries the serve CLI flags verbatim (limits,
    quotas, deadlines, drain): the spec does not re-model them, it
    transports them.  ``port=0`` is fully supported — the supervisor's
    health probe follows the *discovered* address of whichever worker
    generation is currently live, not the requested port.
    """

    schema: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    #: Extra ``serve`` CLI flags (e.g. ``("--max-rounds", "50")``).
    serve_args: tuple[str, ...] = ()
    #: Warmup manifest path (``--warm``): schemas precompiled before
    #: the worker reports ready.
    warm: Optional[str] = None
    #: Seconds to wait for the readiness handshake after a spawn.
    ready_timeout_s: float = 60.0
    health_interval_s: float = 1.0
    health_failures: int = 3
    health_grace_s: float = 10.0
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    stop_grace_s: float = 10.0

    def serve_argv(self) -> list[str]:
        argv: list[str] = []
        if self.schema is not None:
            argv.append(str(self.schema))
        argv += ["--host", self.host, "--port", str(self.port)]
        if self.warm is not None:
            argv += ["--warm", str(self.warm)]
        argv += list(self.serve_args)
        return argv

    def spawn(self) -> WorkerHandle:
        return serve_spawn(self.serve_argv())()

    def supervisor(
        self,
        *,
        on_worker_up: Optional[Callable[[object], None]] = None,
        on_worker_down: Optional[Callable[[object], None]] = None,
        **overrides: object,
    ) -> "Supervisor":
        """A `Supervisor` for this spec: subprocess spawn, an
        address-following ``op: ping`` watchdog, the spec's restart
        policies.  ``overrides`` pass through to the `Supervisor`
        constructor (tests inject clocks and sleeps this way)."""
        supervisor: Optional[Supervisor] = None

        def health() -> bool:
            worker = supervisor.worker if supervisor is not None else None
            address = getattr(worker, "address", None)
            if address is None:
                return False
            return tcp_ping(*address)

        kwargs: dict = dict(
            health_check=health,
            health_interval_s=self.health_interval_s,
            health_failures=self.health_failures,
            health_grace_s=self.health_grace_s,
            backoff=self.backoff,
            breaker=self.breaker,
            stop_grace_s=self.stop_grace_s,
            on_worker_up=on_worker_up,
            on_worker_down=on_worker_down,
        )
        kwargs.update(overrides)
        spawn = kwargs.pop("spawn", self.spawn)
        supervisor = Supervisor(spawn, **kwargs)
        return supervisor


class Supervisor:
    """Run one worker, restart it on crash, give up on a crash loop.

    ``spawn`` returns a *started* worker handle exposing the
    ``multiprocessing.Process`` surface used here: ``is_alive()``,
    ``exitcode``, ``terminate()``, ``kill()``, ``join(timeout)``.
    ``health_check`` (optional) is polled every ``health_interval_s``
    while the worker is alive; ``health_failures`` consecutive misses
    terminate and restart it.

    ``on_worker_up(worker)`` fires right after each spawn (every
    generation) and ``on_worker_down(worker)`` as soon as the watch
    ends — the worker died, failed health, or supervision is stopping
    and it is about to be terminated.  The fleet uses these to admit
    workers to / evict workers from its routing ring; hooks run on the
    supervisor's thread, and an ``on_worker_up`` that terminates the
    worker (e.g. a failed readiness handshake) simply feeds the normal
    crash/backoff/breaker accounting.  Hook exceptions are treated as
    supervision bugs and propagate.
    """

    def __init__(
        self,
        spawn: Callable[[], object],
        *,
        health_check: Optional[Callable[[], bool]] = None,
        health_interval_s: float = 1.0,
        health_failures: int = 3,
        health_grace_s: float = 5.0,
        backoff: Optional[BackoffPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        stop_grace_s: float = 10.0,
        poll_interval_s: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], None]] = None,
        rng: Optional[random.Random] = None,
        on_worker_up: Optional[Callable[[object], None]] = None,
        on_worker_down: Optional[Callable[[object], None]] = None,
    ) -> None:
        if health_failures < 1:
            raise ValueError(
                f"health_failures must be >= 1, got {health_failures}"
            )
        self._spawn = spawn
        self._health_check = health_check
        self.health_interval_s = health_interval_s
        self.health_failures = health_failures
        self.health_grace_s = health_grace_s
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.breaker = breaker if breaker is not None else BreakerPolicy()
        self.stop_grace_s = stop_grace_s
        self.poll_interval_s = poll_interval_s
        self._clock = clock
        self._stop = threading.Event()
        self._sleep = sleep if sleep is not None else self._default_sleep
        self._rng = rng if rng is not None else random.Random()
        self._on_worker_up = on_worker_up
        self._on_worker_down = on_worker_down
        #: Crash timestamps inside the breaker window.
        self._crashes: deque = deque()
        self.restarts = 0
        self.generation = 0
        self.worker: Optional[object] = None

    def _default_sleep(self, seconds: float) -> None:
        # Interruptible: stop() wakes a supervisor dozing in backoff.
        self._stop.wait(seconds)

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Supervise until `stop()` (returns) or a crash loop (raises
        `CrashLoopError`)."""
        try:
            while not self._stop.is_set():
                self.generation += 1
                self.worker = self._spawn()
                if self._on_worker_up is not None:
                    self._on_worker_up(self.worker)
                healthy_exit = self._watch(self.worker)
                if self._on_worker_down is not None:
                    self._on_worker_down(self.worker)
                if self._stop.is_set():
                    break
                if healthy_exit:
                    # The worker exited cleanly on its own (e.g. it was
                    # SIGTERMed out of band): supervision is done.
                    break
                self._record_crash()
                self.restarts += 1
                self._sleep(
                    self.backoff.delay(len(self._crashes), self._rng)
                )
        finally:
            worker = self.worker
            self.worker = None
            if worker is not None:
                self._terminate(worker)

    def stop(self) -> None:
        """Ask the supervisor to stop; the worker is drained (SIGTERM,
        then killed after ``stop_grace_s``) by the `run` loop's exit."""
        self._stop.set()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Supervision state as a JSON-safe stats block (the fleet's
        per-member ``supervision`` entries carry the same fields)."""
        worker = self.worker
        return {
            "generation": self.generation,
            "restarts": self.restarts,
            "alive": bool(worker is not None and worker.is_alive()),
            "pid": getattr(worker, "pid", None),
            "crashes_in_window": len(self._crashes),
            "stopping": self._stop.is_set(),
        }

    def register_metrics(self, registry, name: str = "supervisor") -> None:
        """Register `describe` as a `repro.obs.MetricsRegistry`
        provider (``repro_supervisor_*`` samples; DESIGN.md §3c).
        ``name`` disambiguates multi-supervisor processes."""
        registry.register_provider(name, self.describe)

    # ------------------------------------------------------------------
    def _watch(self, worker: object) -> bool:
        """Block while the worker lives; True iff it exited cleanly."""
        started = self._clock()
        last_probe = started
        misses = 0
        while not self._stop.is_set():
            if not worker.is_alive():
                return worker.exitcode == 0
            now = self._clock()
            if (
                self._health_check is not None
                and now - started >= self.health_grace_s
                and now - last_probe >= self.health_interval_s
            ):
                last_probe = now
                if self._health_check():
                    misses = 0
                else:
                    misses += 1
                    if misses >= self.health_failures:
                        # A live-but-unresponsive worker is a crash.
                        self._terminate(worker)
                        return False
            self._sleep(self.poll_interval_s)
        return True

    def _record_crash(self) -> None:
        now = self._clock()
        self._crashes.append(now)
        while self._crashes and now - self._crashes[0] > self.breaker.window_s:
            self._crashes.popleft()
        if len(self._crashes) > self.breaker.max_crashes:
            raise CrashLoopError(
                f"{len(self._crashes)} crashes in "
                f"{self.breaker.window_s:g}s (limit "
                f"{self.breaker.max_crashes}); refusing to restart"
            )

    def _terminate(self, worker: object) -> None:
        if not worker.is_alive():
            return
        worker.terminate()  # SIGTERM: the serve CLI drains gracefully
        worker.join(self.stop_grace_s)
        if worker.is_alive():
            worker.kill()
            worker.join(1.0)
