"""A crash-tolerant supervisor for serve workers.

The first concrete piece of the ROADMAP's prefork fleet: one
`Supervisor` owns one worker (the serve loop in a child process),
watches its liveness and — optionally — its health over the wire
(``op: ping``), and restarts it when it dies:

* **jittered exponential backoff** between restarts
  (`BackoffPolicy`): crash n waits ``min(cap, base * 2^(n-1))``
  seconds, scaled by a uniform ±jitter factor so a fleet of
  supervisors never thunders back in lockstep;
* **crash-loop breaker** (`BreakerPolicy`): more than ``max_crashes``
  crashes inside a sliding ``window_s`` trips the breaker —
  `Supervisor.run` raises `CrashLoopError` instead of burning CPU on a
  worker that can never come up (a bad schema, a bound port);
* **health-check watchdog**: a failing health probe (``health_failures``
  consecutive misses) is treated exactly like a crash — the worker is
  terminated and restarted under the same backoff/breaker accounting.

Everything time- and process-shaped is injectable (``spawn``,
``health_check``, ``clock``, ``sleep``, ``rng``), so the restart and
breaker logic is tested deterministically with fake workers and a fake
clock; the real path (`serve_spawn`) runs ``python -m repro serve``
semantics in a ``multiprocessing`` child, which inherits the CLI's
SIGTERM graceful drain.

::

    spawn = serve_spawn(["schema.json", "--port", "8765"])
    supervisor = Supervisor(spawn, health_check=lambda: tcp_ping("127.0.0.1", 8765))
    supervisor.run()        # blocks; Ctrl-C/stop() to leave
"""

from __future__ import annotations

import random
import socket
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "BackoffPolicy",
    "BreakerPolicy",
    "CrashLoopError",
    "Supervisor",
    "serve_spawn",
    "tcp_ping",
]


@dataclass(frozen=True)
class BackoffPolicy:
    """Jittered exponential restart backoff."""

    base_s: float = 0.1
    cap_s: float = 5.0
    #: Fractional uniform jitter: delay is scaled by 1 ± jitter.
    jitter: float = 0.25

    def delay(self, consecutive_crashes: int, rng: random.Random) -> float:
        raw = min(
            self.cap_s,
            self.base_s * (2 ** max(0, consecutive_crashes - 1)),
        )
        if self.jitter <= 0:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


@dataclass(frozen=True)
class BreakerPolicy:
    """The crash-loop breaker: give up past ``max_crashes`` crashes
    within a sliding ``window_s``-second window."""

    max_crashes: int = 5
    window_s: float = 30.0


class CrashLoopError(RuntimeError):
    """The worker crashed too often; the supervisor refuses to restart."""


def tcp_ping(host: str, port: int, timeout: float = 1.0) -> bool:
    """One ``op: ping`` round trip against a serving worker."""
    try:
        with socket.create_connection((host, port), timeout=timeout) as conn:
            conn.settimeout(timeout)
            conn.sendall(b'{"op": "ping"}\n')
            data = b""
            while not data.endswith(b"\n"):
                chunk = conn.recv(4096)
                if not chunk:
                    return False
                data += chunk
        return b'"pong"' in data
    except OSError:
        return False


def _serve_argv(argv: list) -> None:  # pragma: no cover - child process
    """Child-process entry: the CLI ``serve`` path (SIGTERM drain and
    all), exit code propagated to the supervisor."""
    from ..__main__ import main

    sys.exit(main(["serve", *argv]))


def serve_spawn(argv: list) -> Callable[[], object]:
    """A spawn callable running ``python -m repro serve <argv...>`` in a
    ``multiprocessing`` child (spawn context: a clean interpreter, no
    inherited event loops or locks)."""
    import multiprocessing

    context = multiprocessing.get_context("spawn")

    def spawn() -> object:
        process = context.Process(
            target=_serve_argv, args=(list(argv),), daemon=True
        )
        process.start()
        return process

    return spawn


class Supervisor:
    """Run one worker, restart it on crash, give up on a crash loop.

    ``spawn`` returns a *started* worker handle exposing the
    ``multiprocessing.Process`` surface used here: ``is_alive()``,
    ``exitcode``, ``terminate()``, ``kill()``, ``join(timeout)``.
    ``health_check`` (optional) is polled every ``health_interval_s``
    while the worker is alive; ``health_failures`` consecutive misses
    terminate and restart it.
    """

    def __init__(
        self,
        spawn: Callable[[], object],
        *,
        health_check: Optional[Callable[[], bool]] = None,
        health_interval_s: float = 1.0,
        health_failures: int = 3,
        health_grace_s: float = 5.0,
        backoff: Optional[BackoffPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        stop_grace_s: float = 10.0,
        poll_interval_s: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], None]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if health_failures < 1:
            raise ValueError(
                f"health_failures must be >= 1, got {health_failures}"
            )
        self._spawn = spawn
        self._health_check = health_check
        self.health_interval_s = health_interval_s
        self.health_failures = health_failures
        self.health_grace_s = health_grace_s
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.breaker = breaker if breaker is not None else BreakerPolicy()
        self.stop_grace_s = stop_grace_s
        self.poll_interval_s = poll_interval_s
        self._clock = clock
        self._stop = threading.Event()
        self._sleep = sleep if sleep is not None else self._default_sleep
        self._rng = rng if rng is not None else random.Random()
        #: Crash timestamps inside the breaker window.
        self._crashes: deque = deque()
        self.restarts = 0
        self.generation = 0
        self.worker: Optional[object] = None

    def _default_sleep(self, seconds: float) -> None:
        # Interruptible: stop() wakes a supervisor dozing in backoff.
        self._stop.wait(seconds)

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Supervise until `stop()` (returns) or a crash loop (raises
        `CrashLoopError`)."""
        try:
            while not self._stop.is_set():
                self.generation += 1
                self.worker = self._spawn()
                healthy_exit = self._watch(self.worker)
                if self._stop.is_set():
                    break
                if healthy_exit:
                    # The worker exited cleanly on its own (e.g. it was
                    # SIGTERMed out of band): supervision is done.
                    break
                self._record_crash()
                self.restarts += 1
                self._sleep(
                    self.backoff.delay(len(self._crashes), self._rng)
                )
        finally:
            worker = self.worker
            self.worker = None
            if worker is not None:
                self._terminate(worker)

    def stop(self) -> None:
        """Ask the supervisor to stop; the worker is drained (SIGTERM,
        then killed after ``stop_grace_s``) by the `run` loop's exit."""
        self._stop.set()

    # ------------------------------------------------------------------
    def _watch(self, worker: object) -> bool:
        """Block while the worker lives; True iff it exited cleanly."""
        started = self._clock()
        last_probe = started
        misses = 0
        while not self._stop.is_set():
            if not worker.is_alive():
                return worker.exitcode == 0
            now = self._clock()
            if (
                self._health_check is not None
                and now - started >= self.health_grace_s
                and now - last_probe >= self.health_interval_s
            ):
                last_probe = now
                if self._health_check():
                    misses = 0
                else:
                    misses += 1
                    if misses >= self.health_failures:
                        # A live-but-unresponsive worker is a crash.
                        self._terminate(worker)
                        return False
            self._sleep(self.poll_interval_s)
        return True

    def _record_crash(self) -> None:
        now = self._clock()
        self._crashes.append(now)
        while self._crashes and now - self._crashes[0] > self.breaker.window_s:
            self._crashes.popleft()
        if len(self._crashes) > self.breaker.max_crashes:
            raise CrashLoopError(
                f"{len(self._crashes)} crashes in "
                f"{self.breaker.window_s:g}s (limit "
                f"{self.breaker.max_crashes}); refusing to restart"
            )

    def _terminate(self, worker: object) -> None:
        if not worker.is_alive():
            return
        worker.terminate()  # SIGTERM: the serve CLI drains gracefully
        worker.join(self.stop_grace_s)
        if worker.is_alive():
            worker.kill()
            worker.join(1.0)
