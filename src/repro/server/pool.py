"""Per-fingerprint session pooling: the serving layer's routing core.

A `SessionPool` routes every request to a `Session` keyed by the
*content fingerprint* of its schema — the sharding design the service
layer was built for: `CompiledSchema` artifacts (classification,
simplifications, linearization, the rewrite engine, the matcher) are
immutable and thread-safe, so any number of sessions and worker threads
can share one per fingerprint.

Routing is two-level, like the batch CLI it generalizes: the serialized
inline description skips recompilation for byte-identical spellings,
and the content fingerprint dedupes reordered spellings of the same
schema.  Each fingerprint owns a bounded pool of `Session`s (all over
the one shared `CompiledSchema`) handed out round-robin — sessions are
individually thread-safe, so pooling exists to spread decision-cache
lock contention, not to serialize access.  Cold fingerprints are
evicted LRU once `max_fingerprints` distinct schemas have been seen
(the default schema, when configured, is pinned).

`process(request)` is the transport-independent request path shared by
the asyncio server, the WSGI adapter, and the batch CLI: route, decide
or plan, stamp the request id.  `stats()` aggregates `Session.stats()`
across the pool per fingerprint, plus the pool's own routing counters.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Union

from ..answerability.deciders import (
    DEFAULT_CHASE_FACTS,
    DEFAULT_CHASE_ROUNDS,
)
from ..containment.rewriting import DEFAULT_MAX_DISJUNCTS
from ..io import (
    DecideRequest,
    DecideResponse,
    PlanResponse,
    json_safe,
    schema_from_dict,
    schema_to_dict,
)
from ..obs.timing import stage
from ..runtime import Budget
from ..schema.schema import Schema
from ..service import CompiledSchema, Session, as_compiled

#: Default bound on distinct fingerprints held live (LRU past this).
DEFAULT_MAX_FINGERPRINTS = 64
#: Default sessions per fingerprint.
DEFAULT_POOL_SIZE = 2


@dataclass(frozen=True)
class SessionLimits:
    """The per-session resource limits a pool stamps on every session
    it creates (one place to configure, so every fingerprint's sessions
    behave identically)."""

    max_rounds: Optional[int] = DEFAULT_CHASE_ROUNDS
    max_facts: int = DEFAULT_CHASE_FACTS
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS
    subsumption: bool = True
    #: Worker threads for the chase's per-round trigger collection
    #: (0/1 = sequential; deterministic for every value).
    chase_parallelism: int = 0
    cache_size: int = 1024
    #: Wall-clock deadline applied to every request that does not carry
    #: its own ``deadline_ms`` (None = unbounded).  A request deadline
    #: is capped at this value when both are set.
    deadline_ms: Optional[float] = None

    def make_session(
        self, compiled: CompiledSchema, *, store=None
    ) -> Session:
        return Session(
            compiled,
            max_rounds=self.max_rounds,
            max_facts=self.max_facts,
            max_disjuncts=self.max_disjuncts,
            subsumption=self.subsumption,
            chase_parallelism=self.chase_parallelism,
            cache_size=self.cache_size,
            store=store,
        )


class _Entry:
    """One fingerprint's slice of the pool: the shared compiled schema
    plus up to ``pool_size`` sessions, created lazily, served
    round-robin."""

    __slots__ = ("compiled", "sessions", "cursor", "requests")

    def __init__(self, compiled: CompiledSchema) -> None:
        self.compiled = compiled
        self.sessions: list[Session] = []
        self.cursor = 0
        self.requests = 0

    def next_session(
        self, limits: SessionLimits, pool_size: int, store=None
    ) -> Session:
        """Round-robin across the slice, growing it until full."""
        self.requests += 1
        if len(self.sessions) < pool_size:
            session = limits.make_session(self.compiled, store=store)
            self.sessions.append(session)
            return session
        self.cursor = (self.cursor + 1) % len(self.sessions)
        return self.sessions[self.cursor]

    def stats(self) -> dict:
        """`Session.stats()` aggregated over the slice: per-schema
        artifacts (compile/rewrite/matcher counters) are shared objects
        reported once; decision-cache traffic is summed."""
        cache = {"hits": 0, "misses": 0, "size": 0, "capacity": 0}
        for session in self.sessions:
            for key, value in session.cache_info().items():
                cache[key] = cache.get(key, 0) + value
        return {
            "fingerprint": self.compiled.fingerprint,
            "requests": self.requests,
            "sessions": len(self.sessions),
            "cache": cache,
            "compile_stats": dict(self.compiled.stats),
            "rewrite_engine": self.compiled.engine_stats(),
            "matching": self.compiled.matcher_stats(),
        }


SchemaLike = Union[None, dict, Schema, CompiledSchema]


class SessionPool:
    """Fingerprint-routed, LRU-bounded pool of decision sessions.

    ::

        pool = SessionPool(default_schema=schema, pool_size=4)
        response = pool.process(DecideRequest(query="R(x)"))
        pool.stats()["fingerprints"]

    Thread-safe: routing state is under one lock; the sessions handed
    out are themselves thread-safe, so `process` may be called from any
    number of worker threads concurrently.
    """

    def __init__(
        self,
        default_schema: SchemaLike = None,
        *,
        limits: Optional[SessionLimits] = None,
        pool_size: int = DEFAULT_POOL_SIZE,
        max_fingerprints: int = DEFAULT_MAX_FINGERPRINTS,
        store=None,
    ) -> None:
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if max_fingerprints < 1:
            raise ValueError(
                f"max_fingerprints must be >= 1, got {max_fingerprints}"
            )
        self.limits = limits if limits is not None else SessionLimits()
        self.pool_size = pool_size
        self.max_fingerprints = max_fingerprints
        #: Optional durable `repro.cache.ArtifactStore` shared by every
        #: session and compiled schema this pool creates; compiled
        #: fingerprints are recorded into the store's warm set so a
        #: restarted process can `warm_from_store()`.
        self.store = store
        self._lock = threading.RLock()
        #: fingerprint -> entry, in LRU order (hot end last).
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        #: serialized inline description -> fingerprint.  Bounded two
        #: ways: evicting a fingerprint drops its spellings, and the
        #: map itself is LRU-capped (`_max_text_keys`) so a stream of
        #: distinct spellings of one hot fingerprint cannot grow it
        #: without bound.
        self._text_keys: OrderedDict[str, str] = OrderedDict()
        self._max_text_keys = 8 * max_fingerprints
        self._counters = {
            "requests": 0,
            "schemas_compiled": 0,
            "sessions_created": 0,
            "text_key_hits": 0,
            "fingerprint_hits": 0,
            "evictions": 0,
            "warmed": 0,
        }
        #: fingerprint -> {"requests", "cache_hits"}, LRU-bounded but
        #: *not* tied to entry eviction: shard heat stays observable
        #: even for fingerprints the pool has since evicted (the fleet
        #: dispatcher reads ring balance off this map).
        self._heat: OrderedDict[str, dict[str, int]] = OrderedDict()
        self._max_heat = 8 * max_fingerprints
        self._default: Optional[_Entry] = None
        if default_schema is not None:
            self._default = _Entry(self._compile(default_schema))

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    @staticmethod
    def _build(schema: Union[dict, Schema, CompiledSchema]) -> CompiledSchema:
        """Counter-free compilation (runs outside the lock in
        `warm_many`; `_compile` adds the accounting)."""
        if isinstance(schema, dict):
            schema = schema_from_dict(schema)
        return as_compiled(schema)

    def _register_store(self, compiled: CompiledSchema) -> None:
        if self.store is None:
            return
        compiled.bind_store(self.store)
        from ..cache.bundle import record_warm_schema

        record_warm_schema(
            self.store, compiled.fingerprint, schema_to_dict(compiled.schema)
        )

    def _compile(self, schema: Union[dict, Schema, CompiledSchema]):
        with stage("compile"):
            compiled = self._build(schema)
        self._counters["schemas_compiled"] += 1
        self._register_store(compiled)
        return compiled

    def _remember_text_key(self, text_key: str, fingerprint: str) -> None:
        self._text_keys[text_key] = fingerprint
        self._text_keys.move_to_end(text_key)
        while len(self._text_keys) > self._max_text_keys:
            self._text_keys.popitem(last=False)

    def _entry_for(
        self,
        schema: SchemaLike,
        precompiled: Optional[CompiledSchema] = None,
    ) -> _Entry:
        if schema is None:
            if self._default is None:
                raise ValueError(
                    "request carries no schema and the pool has no default"
                )
            return self._default
        text_key = None
        if isinstance(schema, dict):
            text_key = json.dumps(schema, sort_keys=True)
            fingerprint = self._text_keys.get(text_key)
            if fingerprint is not None:
                self._text_keys.move_to_end(text_key)
                if (
                    self._default is not None
                    and fingerprint == self._default.compiled.fingerprint
                ):
                    self._counters["text_key_hits"] += 1
                    return self._default
                entry = self._entries.get(fingerprint)
                if entry is not None:
                    self._counters["text_key_hits"] += 1
                    self._entries.move_to_end(fingerprint)
                    return entry
        if precompiled is not None:
            # `warm_many` already built this schema outside the lock;
            # account for the compile exactly as `_compile` would have.
            compiled = precompiled
            self._counters["schemas_compiled"] += 1
            self._register_store(compiled)
        else:
            compiled = self._compile(schema)
        if (
            self._default is not None
            and compiled.fingerprint == self._default.compiled.fingerprint
        ):
            # An inline spelling of the pinned default schema: remember
            # the spelling so the next occurrence skips recompilation.
            if text_key is not None:
                self._remember_text_key(text_key, compiled.fingerprint)
            return self._default
        entry = self._entries.get(compiled.fingerprint)
        if entry is None:
            entry = _Entry(compiled)
            self._entries[compiled.fingerprint] = entry
        else:
            self._counters["fingerprint_hits"] += 1
        self._entries.move_to_end(compiled.fingerprint)
        if text_key is not None:
            self._remember_text_key(text_key, compiled.fingerprint)
        while len(self._entries) > self.max_fingerprints:
            evicted_fingerprint, __ = self._entries.popitem(last=False)
            self._counters["evictions"] += 1
            for text in [
                text
                for text, fp in self._text_keys.items()
                if fp == evicted_fingerprint
            ]:
                del self._text_keys[text]
        return entry

    def session(self, schema: SchemaLike = None) -> Session:
        """Route to a pooled session.

        ``schema`` may be None (the pinned default), an inline JSON
        description (dict), a `Schema`, or a `CompiledSchema`.
        """
        with self._lock:
            self._counters["requests"] += 1
            entry = self._entry_for(schema)
            before = len(entry.sessions)
            session = entry.next_session(
                self.limits, self.pool_size, self.store
            )
            if len(entry.sessions) != before:
                self._counters["sessions_created"] += 1
            return session

    def warm(
        self,
        schema: SchemaLike,
        *,
        precompiled: Optional[CompiledSchema] = None,
    ) -> str:
        """Precompile ``schema`` into the pool without serving a
        request; returns the content fingerprint.

        The entry (compiled artifacts plus one ready session) is
        registered exactly as a first request would register it — same
        two-level routing, same LRU accounting — so the first real
        request on a warmed fingerprint is a plain ``text_key_hits`` /
        ``fingerprint_hits`` lookup with zero compile latency.  Workers
        warm their manifest before reporting ready (`--warm`); warmed
        schemas do not count as requests or shard heat.
        """
        if schema is None:
            raise ValueError("cannot warm None (the default is always hot)")
        with self._lock:
            entry = self._entry_for(schema, precompiled)
            if not entry.sessions:
                entry.sessions.append(
                    self.limits.make_session(
                        entry.compiled, store=self.store
                    )
                )
                self._counters["sessions_created"] += 1
            self._counters["warmed"] += 1
            return entry.compiled.fingerprint

    def warm_many(
        self,
        schemas: Iterable[SchemaLike],
        *,
        parallelism: int = 4,
    ) -> list[str]:
        """Warm a batch of schemas, compiling across a thread pool.

        Per-fingerprint compiles are independent, so warm-source
        preloading need not serialize startup.  The counter trajectory
        is kept *byte-exact* with a sequential ``warm()`` loop: the
        pool lock is held only to (a) decide which entries actually
        need a compile and (b) register results in input order; the
        compiles themselves — the expensive part — run unlocked in the
        pool.  Duplicate spellings compile once (the second occurrence
        registers as a ``text_key_hits`` lookup, exactly as it would
        sequentially); distinct spellings of one fingerprint each
        compile and the later ones count ``fingerprint_hits``.
        """
        schemas = list(schemas)
        if any(schema is None for schema in schemas):
            raise ValueError("cannot warm None (the default is always hot)")
        if not schemas:
            return []
        if parallelism <= 1 or len(schemas) == 1:
            return [self.warm(schema) for schema in schemas]
        # Phase 1: under the lock, find the entries needing a compile.
        # Dicts are keyed by spelling (so in-batch duplicates compile
        # once); non-dict schemas always take the compile path, exactly
        # like sequential warm().
        to_compile: "OrderedDict[Any, SchemaLike]" = OrderedDict()
        keys: list[Any] = []
        with self._lock:
            for index, schema in enumerate(schemas):
                key: Any = index
                if isinstance(schema, CompiledSchema):
                    keys.append(None)  # passthrough, no build needed
                    continue
                if isinstance(schema, dict):
                    text_key = json.dumps(schema, sort_keys=True)
                    key = ("text", text_key)
                    fingerprint = self._text_keys.get(text_key)
                    if fingerprint is not None and (
                        (
                            self._default is not None
                            and fingerprint
                            == self._default.compiled.fingerprint
                        )
                        or fingerprint in self._entries
                    ):
                        keys.append(None)  # live: registration will hit
                        continue
                keys.append(key)
                to_compile.setdefault(key, schema)
        compiled_by_key: dict[Any, CompiledSchema] = {}
        if to_compile:
            workers = max(1, min(parallelism, len(to_compile)))
            with ThreadPoolExecutor(max_workers=workers) as executor:
                futures = {
                    key: executor.submit(self._build, schema)
                    for key, schema in to_compile.items()
                }
                for key, future in futures.items():
                    compiled_by_key[key] = future.result()
        # Phase 2: register in input order under the lock.
        return [
            self.warm(
                schema, precompiled=compiled_by_key.get(keys[index])
            )
            for index, schema in enumerate(schemas)
        ]

    def warm_from_store(self, *, parallelism: int = 4) -> int:
        """Re-warm every schema in the bound store's warm set.

        The warm set is written as a side effect of compiling with a
        store bound, so a restarted process recovers its working set
        without any manifest.  Invalid/stale entries are skipped by the
        loader; returns the number of schemas warmed.
        """
        if self.store is None:
            return 0
        from ..cache.bundle import load_warm_set

        descriptions = load_warm_set(self.store)
        if not descriptions:
            return 0
        self.warm_many(descriptions, parallelism=parallelism)
        return len(descriptions)

    def _record_heat(self, fingerprint: str, *, cached: bool) -> None:
        with self._lock:
            heat = self._heat.get(fingerprint)
            if heat is None:
                heat = {"requests": 0, "cache_hits": 0}
                self._heat[fingerprint] = heat
            heat["requests"] += 1
            if cached:
                heat["cache_hits"] += 1
            self._heat.move_to_end(fingerprint)
            while len(self._heat) > self._max_heat:
                self._heat.popitem(last=False)

    # ------------------------------------------------------------------
    # The transport-independent request path
    # ------------------------------------------------------------------
    def budget_for(self, request: DecideRequest) -> Optional[Budget]:
        """The `Budget` governing one request, or None when unbounded.

        The effective deadline is the *tighter* of the request's own
        ``deadline_ms`` and the pool's configured default
        (``limits.deadline_ms``): clients may always ask for less time
        than the server allows, never more.
        """
        deadlines = [
            d
            for d in (request.deadline_ms, self.limits.deadline_ms)
            if d is not None
        ]
        if not deadlines:
            return None
        return Budget(min(deadlines))

    def process(
        self,
        request: DecideRequest,
        *,
        budget: Optional[Budget] = None,
    ) -> Union[DecideResponse, PlanResponse]:
        """Route and execute one request frame (op decide or plan).

        Raises on malformed input (bad schema, unparseable query, an op
        this layer does not handle) — transports turn exceptions into
        `ErrorFrame`s.  ``budget`` defaults to `budget_for(request)`;
        transports that need to cancel in-flight work (drain, client
        disconnect) construct the budget themselves and keep a handle.
        An exhausted budget raises `repro.runtime.DeadlineExceeded`.
        """
        if request.op not in ("decide", "plan"):
            raise ValueError(
                f"op {request.op!r} is not a session operation"
            )
        if budget is None:
            budget = self.budget_for(request)
        session = self.session(request.schema)
        if request.op == "plan":
            response: Union[DecideResponse, PlanResponse] = session.plan(
                request.query, budget=budget
            )
        else:
            response = session.decide(
                request.query, finite=request.finite, budget=budget
            )
        self._record_heat(response.fingerprint, cached=response.cached)
        if request.id is not None:
            # Copy: the session cache keeps the id-free original.
            response = dataclasses.replace(response, id=request.id)
        return response

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Pool-level routing counters plus per-fingerprint aggregated
        session statistics (hot fingerprints last, mirroring LRU
        order)."""
        with self._lock:
            entries = list(self._entries.values())
            if self._default is not None:
                entries.insert(0, self._default)
            payload = {
                "fingerprints": len(entries),
                "pool_size": self.pool_size,
                "max_fingerprints": self.max_fingerprints,
                "counters": dict(self._counters),
                "limits": {
                    "max_rounds": self.limits.max_rounds,
                    "max_facts": self.limits.max_facts,
                    "max_disjuncts": self.limits.max_disjuncts,
                    "subsumption": self.limits.subsumption,
                    "deadline_ms": self.limits.deadline_ms,
                },
                # Shard heat: per-fingerprint request/decision-cache-hit
                # counts (bounded, eviction-surviving, hot last) — what
                # the fleet aggregates to observe ring balance.
                "per_fingerprint": {
                    fingerprint: dict(heat)
                    for fingerprint, heat in self._heat.items()
                },
                "sessions": [entry.stats() for entry in entries],
            }
            if self.store is not None:
                # Per-tier hit/miss/write/invalid counters of the
                # durable artifact store (shared across fingerprints).
                payload["store"] = self.store.stats()
            return payload

    def register_metrics(self, registry: Any) -> None:
        """Register this pool's legacy `stats` as the ``pool`` provider
        of a `repro.obs.MetricsRegistry` (DESIGN.md §3c): every pool,
        session, matcher, engine, and store counter surfaces as
        ``repro_pool_*`` samples, equal to `stats` by construction."""
        registry.register_provider("pool", self.stats)

    def fingerprints(self) -> tuple[str, ...]:
        """Live fingerprints, cold to hot (default first when pinned)."""
        with self._lock:
            live = tuple(self._entries)
            if self._default is not None:
                return (self._default.compiled.fingerprint,) + live
            return live

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"SessionPool({len(self._entries)} fingerprints, "
                f"pool_size={self.pool_size})"
            )


def introspection_frame(
    request: DecideRequest,
    pool: SessionPool,
    *,
    metrics: Any = None,
    **sections: Any,
) -> dict:
    """The pong/stats/metrics frames, shared by every transport.

    The TCP server, the WSGI adapter, and the batch CLI all answer
    ``op: ping``/``op: stats``/``op: metrics`` through this one
    builder, so the frame shape cannot drift between front ends.
    ``sections`` adds transport-specific stats blocks (the TCP server
    passes ``server=...``) ahead of the pool's.

    ``op: metrics`` returns the `repro.obs.MetricsRegistry` snapshot
    (``metrics`` when the transport runs one, else an ad-hoc registry
    over this pool), stamped with the answering worker's pid so fleet
    aggregation can label per-worker series.  The frame is passed
    through `repro.io.json_safe`: introspection payloads must always
    serialize, whatever a provider returns.
    """
    if request.op == "ping":
        frame: dict = {"op": "pong"}
    elif request.op == "metrics":
        import os

        registry = metrics
        if registry is None:
            from ..obs.registry import MetricsRegistry

            registry = MetricsRegistry()
            if hasattr(pool, "register_metrics"):
                pool.register_metrics(registry)
            elif hasattr(pool, "stats"):
                registry.register_provider("pool", pool.stats)
        frame = {
            "op": "metrics",
            "pid": os.getpid(),
            "metrics": registry.snapshot(),
            **sections,
        }
    else:
        frame = {"op": "stats", **sections, "pool": pool.stats()}
    if request.id is not None:
        frame["id"] = request.id
    return json_safe(frame)
