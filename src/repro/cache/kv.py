"""Pluggable key–value stores: the persistence substrate of the cache tier.

A `KVStore` is the minimal durable interface the artifact tier needs:
namespaced byte blobs with optional TTLs.  Two backends ship:

* `MemoryKVStore` — a process-local dict.  Used by tests and as the
  seeding target for precompiled bundles when no durable store is
  configured; it makes the tier's load-through/write-through paths
  exercisable without touching disk.
* `SQLiteKVStore` — a single-file store in WAL mode.  WAL gives
  multi-process safety on one host: writers take the file lock briefly
  per transaction while readers keep reading the last checkpointed
  state, which is exactly the fleet's shape (N worker processes sharing
  one warm store).  ``busy_timeout`` turns lock contention into short
  waits instead of errors.

**Failure contract.**  A durable cache must never take serving down
with it: after construction, the data-path methods (`get` / `put` /
`delete` / `scan`) swallow backend errors — a failed read is a miss, a
failed write is dropped — counting them in ``operational_errors`` and
logging the first occurrence.  Construction itself raises the typed
`CacheError` only when the backing file is unusable *and* cannot be
sidelined; a corrupt existing file is renamed to ``<name>.corrupt-<ts>``
and recreated fresh (the entries were disposable by definition — every
one can be recomputed).
"""

from __future__ import annotations

import logging
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Iterator, Optional, Union

logger = logging.getLogger("repro.cache")


class CacheError(Exception):
    """Typed failure of the persistence layer (never a wrong answer:
    callers treat any cache failure as a miss and recompute)."""


class KVStore:
    """Abstract namespaced byte store with TTL support.

    Keys live inside namespaces (the tier derives one namespace per
    fingerprint per artifact kind), values are opaque ``bytes``; a
    ``ttl_s`` makes an entry expire — an expired entry behaves exactly
    like an absent one.  Implementations must be thread-safe.
    """

    def get(self, namespace: str, key: str) -> Optional[bytes]:
        raise NotImplementedError

    def put(
        self,
        namespace: str,
        key: str,
        value: bytes,
        *,
        ttl_s: Optional[float] = None,
    ) -> None:
        raise NotImplementedError

    def delete(self, namespace: str, key: str) -> bool:
        raise NotImplementedError

    def scan(self, namespace: str, prefix: str = "") -> Iterator[str]:
        """Yield the live keys of a namespace (optionally by prefix)."""
        raise NotImplementedError

    def namespaces(self) -> tuple[str, ...]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def describe(self) -> dict:
        return {"backend": type(self).__name__}


class MemoryKVStore(KVStore):
    """In-process backend: a dict of dicts with lazy TTL expiry."""

    def __init__(self) -> None:
        self._data: dict[str, dict[str, tuple[bytes, Optional[float]]]] = {}
        self._lock = threading.Lock()

    def _live(
        self, entries: dict[str, tuple[bytes, Optional[float]]], key: str
    ) -> Optional[bytes]:
        entry = entries.get(key)
        if entry is None:
            return None
        value, expires_at = entry
        if expires_at is not None and expires_at <= time.time():
            del entries[key]
            return None
        return value

    def get(self, namespace: str, key: str) -> Optional[bytes]:
        with self._lock:
            entries = self._data.get(namespace)
            if entries is None:
                return None
            return self._live(entries, key)

    def put(
        self,
        namespace: str,
        key: str,
        value: bytes,
        *,
        ttl_s: Optional[float] = None,
    ) -> None:
        expires_at = time.time() + ttl_s if ttl_s is not None else None
        with self._lock:
            self._data.setdefault(namespace, {})[key] = (
                bytes(value),
                expires_at,
            )

    def delete(self, namespace: str, key: str) -> bool:
        with self._lock:
            entries = self._data.get(namespace)
            if entries is None:
                return False
            return entries.pop(key, None) is not None

    def scan(self, namespace: str, prefix: str = "") -> Iterator[str]:
        with self._lock:
            entries = self._data.get(namespace, {})
            keys = [
                key
                for key in list(entries)
                if key.startswith(prefix)
                and self._live(entries, key) is not None
            ]
        yield from keys

    def namespaces(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(ns for ns, entries in self._data.items() if entries)


class SQLiteKVStore(KVStore):
    """Single-file SQLite backend (WAL mode) safe under concurrent
    worker processes on one host.

    One connection guarded by a lock serves the whole process (every
    operation is a single short statement; cross-thread contention is
    negligible next to the decisions being cached).  Cross-*process*
    concurrency is SQLite's own WAL locking.
    """

    def __init__(
        self, path: Union[str, Path], *, busy_timeout_s: float = 5.0
    ) -> None:
        self.path = Path(path)
        self._lock = threading.RLock()
        self._conn: Optional[sqlite3.Connection] = None
        self.operational_errors = 0
        self._error_logged = False
        try:
            self._conn = self._open(busy_timeout_s)
        except (sqlite3.Error, OSError):
            # A corrupt or non-database file: sideline it and start
            # fresh — cache entries are recomputable by construction,
            # so losing them is a cold start, not data loss.
            sidelined = self._sideline()
            try:
                self._conn = self._open(busy_timeout_s)
            except (sqlite3.Error, OSError) as error:
                raise CacheError(
                    f"cannot open cache store at {self.path}: {error}"
                ) from error
            if sidelined is not None:
                logger.warning(
                    "corrupt cache store sidelined to %s; starting cold",
                    sidelined,
                )

    def _open(self, busy_timeout_s: float) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        conn = sqlite3.connect(
            str(self.path),
            timeout=busy_timeout_s,
            check_same_thread=False,
            isolation_level=None,  # autocommit: one statement, one txn
        )
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS cache ("
                "  namespace TEXT NOT NULL,"
                "  key TEXT NOT NULL,"
                "  value BLOB NOT NULL,"
                "  expires_at REAL,"
                "  PRIMARY KEY (namespace, key)"
                ")"
            )
            # Surface latent page corruption now (cheap on a fresh or
            # small file) instead of mid-request.
            conn.execute("SELECT COUNT(*) FROM cache").fetchone()
        except sqlite3.Error:
            conn.close()
            raise
        return conn

    def _sideline(self) -> Optional[Path]:
        if not self.path.exists():
            return None
        target = self.path.with_name(
            f"{self.path.name}.corrupt-{int(time.time() * 1000)}"
        )
        try:
            os.replace(self.path, target)
        except OSError:
            try:
                self.path.unlink()
            except OSError:
                return None
            return self.path
        # WAL sidecars belong to the sidelined file; drop them so the
        # fresh database does not try to replay a foreign journal.
        for suffix in ("-wal", "-shm"):
            try:
                Path(str(self.path) + suffix).unlink()
            except OSError:
                pass
        return target

    def _guard(self, operation: str, error: Exception) -> None:
        """Count-and-log once: data-path failures degrade, never raise."""
        self.operational_errors += 1
        if not self._error_logged:
            self._error_logged = True
            logger.warning(
                "cache store %s failed on %s (%s); degrading to misses",
                self.path,
                operation,
                error,
            )

    def get(self, namespace: str, key: str) -> Optional[bytes]:
        with self._lock:
            if self._conn is None:
                return None
            try:
                row = self._conn.execute(
                    "SELECT value, expires_at FROM cache "
                    "WHERE namespace = ? AND key = ?",
                    (namespace, key),
                ).fetchone()
                if row is None:
                    return None
                value, expires_at = row
                if expires_at is not None and expires_at <= time.time():
                    self._conn.execute(
                        "DELETE FROM cache WHERE namespace = ? AND key = ?",
                        (namespace, key),
                    )
                    return None
                return bytes(value)
            except sqlite3.Error as error:
                self._guard("get", error)
                return None

    def put(
        self,
        namespace: str,
        key: str,
        value: bytes,
        *,
        ttl_s: Optional[float] = None,
    ) -> None:
        expires_at = time.time() + ttl_s if ttl_s is not None else None
        with self._lock:
            if self._conn is None:
                return
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO cache "
                    "(namespace, key, value, expires_at) VALUES (?, ?, ?, ?)",
                    (namespace, key, sqlite3.Binary(value), expires_at),
                )
            except sqlite3.Error as error:
                self._guard("put", error)

    def delete(self, namespace: str, key: str) -> bool:
        with self._lock:
            if self._conn is None:
                return False
            try:
                cursor = self._conn.execute(
                    "DELETE FROM cache WHERE namespace = ? AND key = ?",
                    (namespace, key),
                )
                return cursor.rowcount > 0
            except sqlite3.Error as error:
                self._guard("delete", error)
                return False

    def scan(self, namespace: str, prefix: str = "") -> Iterator[str]:
        with self._lock:
            if self._conn is None:
                return
            try:
                rows = self._conn.execute(
                    "SELECT key FROM cache WHERE namespace = ? "
                    "AND key GLOB ? AND (expires_at IS NULL OR expires_at > ?)"
                    " ORDER BY key",
                    (namespace, prefix + "*", time.time()),
                ).fetchall()
            except sqlite3.Error as error:
                self._guard("scan", error)
                return
        for (key,) in rows:
            yield key

    def namespaces(self) -> tuple[str, ...]:
        with self._lock:
            if self._conn is None:
                return ()
            try:
                rows = self._conn.execute(
                    "SELECT DISTINCT namespace FROM cache ORDER BY namespace"
                ).fetchall()
            except sqlite3.Error as error:
                self._guard("namespaces", error)
                return ()
        return tuple(ns for (ns,) in rows)

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    def describe(self) -> dict:
        return {
            "backend": "SQLiteKVStore",
            "path": str(self.path),
            "operational_errors": self.operational_errors,
        }
