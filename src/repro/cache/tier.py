"""`ArtifactStore`: the counted facade the serving layers talk to.

One `ArtifactStore` wraps one `KVStore` and exposes typed load/store
of enveloped payloads, tracking per-*tier* counters (a tier is an
artifact kind: ``"decision"``, ``"rewrite"``, ``"bundle"``):

* ``hits`` — blob present and its envelope decoded cleanly;
* ``misses`` — no blob under the key;
* ``invalid`` — blob present but rejected (format/library-version
  mismatch, digest failure, garbage) — behaviourally a miss, counted
  apart because a high rate means a stale or damaged store;
* ``writes`` — envelopes persisted.

The facade inherits the kv layer's failure contract: no data-path
operation raises.  Additionally `store()` swallows `UnencodableValue`
from payload encoding — an artifact that cannot be persisted is simply
not persisted.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Optional, Union

from .codec import decode_envelope, encode_envelope
from .kv import KVStore, SQLiteKVStore

#: File name of the single-node store inside a ``--cache-dir``.
STORE_FILENAME = "repro-cache.sqlite"

_COUNTER_KEYS = ("hits", "misses", "writes", "invalid")


class ArtifactStore:
    """Fingerprint-addressed artifact persistence over a `KVStore`."""

    def __init__(self, kv: KVStore) -> None:
        self.kv = kv
        self._lock = threading.Lock()
        self._counters: dict[str, dict[str, int]] = {}

    def _bump(self, tier: str, counter: str) -> None:
        with self._lock:
            tiers = self._counters.setdefault(
                tier, dict.fromkeys(_COUNTER_KEYS, 0)
            )
            tiers[counter] += 1

    def load(self, tier: str, namespace: str, key: str) -> Optional[Any]:
        """Load and unwrap one artifact; ``None`` on miss or invalid."""
        blob = self.kv.get(namespace, key)
        if blob is None:
            self._bump(tier, "misses")
            return None
        payload = decode_envelope(blob, tier)
        if payload is None:
            self._bump(tier, "invalid")
            return None
        self._bump(tier, "hits")
        return payload

    def store(
        self,
        tier: str,
        namespace: str,
        key: str,
        payload: Any,
        *,
        ttl_s: Optional[float] = None,
    ) -> bool:
        """Persist one artifact; returns False when it was skipped."""
        try:
            blob = encode_envelope(tier, payload)
        except (TypeError, ValueError):
            # UnencodableValue, a payload json.dumps cannot serialize,
            # or a circular reference: skip persisting, never raise.
            return False
        self.kv.put(namespace, key, blob, ttl_s=ttl_s)
        self._bump(tier, "writes")
        return True

    def stats(self) -> dict:
        with self._lock:
            tiers = {
                tier: dict(counters)
                for tier, counters in sorted(self._counters.items())
            }
        return {"backend": self.kv.describe(), "tiers": tiers}

    def register_metrics(self, registry, name: str = "store") -> None:
        """Register per-tier hit/miss/write/invalid counters as a
        `repro.obs.MetricsRegistry` provider (``repro_store_tiers_*``
        samples; DESIGN.md §3c).  ``name`` disambiguates when one
        process observes several stores."""
        registry.register_provider(name, self.stats)

    def close(self) -> None:
        self.kv.close()


def open_directory(cache_dir: Union[str, Path]) -> ArtifactStore:
    """Open (creating if needed) the single-node store for a directory.

    Raises `repro.cache.CacheError` when the directory's store file is
    unusable and cannot be sidelined; callers on the serving path catch
    that, warn, and proceed without persistence.
    """
    directory = Path(cache_dir)
    try:
        directory.mkdir(parents=True, exist_ok=True)
    except OSError as error:
        raise CacheError(
            f"cannot create cache directory {directory}: {error}"
        ) from error
    return ArtifactStore(SQLiteKVStore(directory / STORE_FILENAME))
