"""Versioned, fingerprint-addressed serialization for cached artifacts.

Every persisted value travels inside an *envelope*::

    {"v": FORMAT_VERSION, "lib": "<repro.__version__>",
     "kind": "<artifact kind>", "sha": "<payload digest>",
     "payload": ...}

Decoding is strict and total: any structural problem — wrong format
version, different library version, kind mismatch, digest mismatch,
truncated bytes, non-JSON garbage — returns ``None`` (a *miss*), never
raises.  The library-version stamp is compared for exact equality: a
new release invalidates every persisted artifact wholesale, which is
the only invalidation rule that needs no knowledge of what changed
between releases.  The payload digest catches torn writes that still
parse as JSON.

The second half of the module is the wire form for `RewriteEngine`
states (tuples of atoms over canonical ``_q*`` variables and JSON-scalar
constants).  Constants outside str/int/float/bool/None do not survive a
JSON round-trip hashably (tuples come back as lists), so `encode_state`
raises `UnencodableValue` for them and the caller simply skips
persisting that entry — correctness is never gated on persistability.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Optional, Sequence

from ..logic.atoms import Atom
from ..logic.terms import Constant, Variable

#: Bump on any change to the envelope layout or a payload wire form.
FORMAT_VERSION = 1


class UnencodableValue(TypeError):
    """A term value that has no faithful JSON wire form."""


def _library_version() -> str:
    from .. import __version__

    return __version__


def _digest(payload_json: str) -> str:
    return hashlib.sha256(payload_json.encode("utf-8")).hexdigest()[:16]


def encode_envelope(kind: str, payload: Any) -> bytes:
    """Wrap `payload` (JSON-serializable) in a stamped envelope."""
    payload_json = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    )
    envelope = {
        "v": FORMAT_VERSION,
        "lib": _library_version(),
        "kind": kind,
        "sha": _digest(payload_json),
        "payload": payload_json,
    }
    return json.dumps(envelope, separators=(",", ":")).encode("utf-8")


def decode_envelope(blob: Optional[bytes], kind: str) -> Optional[Any]:
    """Unwrap an envelope; any mismatch or corruption is ``None``."""
    if blob is None:
        return None
    try:
        envelope = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(envelope, dict):
        return None
    if envelope.get("v") != FORMAT_VERSION:
        return None
    if envelope.get("lib") != _library_version():
        return None
    if envelope.get("kind") != kind:
        return None
    payload_json = envelope.get("payload")
    if not isinstance(payload_json, str):
        return None
    if envelope.get("sha") != _digest(payload_json):
        return None
    try:
        return json.loads(payload_json)
    except json.JSONDecodeError:
        return None


# ----------------------------------------------------------------------
# Rewrite-state wire form
# ----------------------------------------------------------------------

#: Constant values with a faithful JSON round trip.  ``bool`` is listed
#: before the int check below because ``isinstance(True, int)`` holds.
_SCALARS = (bool, int, float, str, type(None))


def _encode_term(term: Any) -> list:
    if isinstance(term, Variable):
        return ["v", term.name]
    if isinstance(term, Constant):
        value = term.value
        if isinstance(value, _SCALARS):
            return ["c", value]
        raise UnencodableValue(
            f"constant value {value!r} has no JSON wire form"
        )
    # Nulls never occur in rewrite states (queries are over variables
    # and constants); anything else is unencodable by definition.
    raise UnencodableValue(f"term {term!r} has no wire form")


def _decode_term(wire: Any) -> Any:
    if (
        isinstance(wire, list)
        and len(wire) == 2
        and isinstance(wire[0], str)
    ):
        tag, value = wire
        if tag == "v" and isinstance(value, str):
            return Variable(value)
        if tag == "c" and isinstance(value, _SCALARS):
            return Constant(value)
    raise ValueError(f"malformed term wire form: {wire!r}")


def encode_state(state: Sequence[Atom]) -> list:
    """Wire form of one state: ``[[relation, [term, ...]], ...]``.

    Raises `UnencodableValue` when a constant has no faithful JSON
    representation; callers skip persisting such entries.
    """
    return [
        [atom.relation, [_encode_term(term) for term in atom.terms]]
        for atom in state
    ]


def decode_state(wire: Any) -> tuple[Atom, ...]:
    """Inverse of `encode_state`; raises ``ValueError`` on bad shapes
    (callers convert that into a cache miss)."""
    if not isinstance(wire, list):
        raise ValueError("state wire form must be a list")
    atoms = []
    for entry in wire:
        if (
            not isinstance(entry, list)
            or len(entry) != 2
            or not isinstance(entry[0], str)
            or not isinstance(entry[1], list)
        ):
            raise ValueError(f"malformed atom wire form: {entry!r}")
        relation, terms = entry
        atoms.append(
            Atom(relation, tuple(_decode_term(term) for term in terms))
        )
    return tuple(atoms)


def state_key(state: Sequence[Atom]) -> str:
    """Stable text key for a canonical state (used as the kv key).

    `repr` of a canonical state is deterministic — variables are interned
    ``_q*`` names assigned in traversal order, constants print by value —
    so hashing it gives a cross-process-stable address.
    """
    text = ";".join(repr(atom) for atom in state)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
