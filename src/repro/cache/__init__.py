"""Durable fingerprint-addressed artifact & decision cache tier.

Layers, bottom up:

* `repro.cache.kv` — pluggable `KVStore` (namespaced byte blobs, TTL)
  with `MemoryKVStore` and a WAL-mode `SQLiteKVStore` safe under
  concurrent worker processes on one host.
* `repro.cache.codec` — stamped envelopes (format + library version +
  payload digest; any mismatch is a miss, never an error) and the wire
  form for rewrite states.
* `repro.cache.tier` — `ArtifactStore`, the counted facade
  (hit/miss/write/invalid per artifact tier) the serving layers bind.
* `repro.cache.bundle` — precompiled-schema bundles, the shared
  warm-source loader (`load_warm_source`, typed `WarmupError`), and
  store-resident warm sets.

Everything here is advisory by construction: a decision is a pure
function of (schema fingerprint, canonical query, limits), so the worst
a broken store can do is force a recompute.
"""

from .bundle import (
    BUNDLE_KIND,
    WarmupError,
    load_bundle,
    load_warm_set,
    load_warm_source,
    record_warm_schema,
    write_bundle,
)
from .codec import FORMAT_VERSION, decode_envelope, encode_envelope
from .kv import CacheError, KVStore, MemoryKVStore, SQLiteKVStore
from .tier import STORE_FILENAME, ArtifactStore, open_directory

__all__ = [
    "ArtifactStore",
    "BUNDLE_KIND",
    "CacheError",
    "FORMAT_VERSION",
    "KVStore",
    "MemoryKVStore",
    "SQLiteKVStore",
    "STORE_FILENAME",
    "WarmupError",
    "decode_envelope",
    "encode_envelope",
    "load_bundle",
    "load_warm_set",
    "load_warm_source",
    "open_directory",
    "record_warm_schema",
    "write_bundle",
]
