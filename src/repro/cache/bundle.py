"""Precompiled-schema bundles and the shared warm-source loader.

A *bundle* is the successor of the ad-hoc fleet warm manifest: one file
holding the schema descriptions a worker precompiles before it reports
ready, wrapped in the same stamped envelope as every other persisted
artifact (`repro.cache.codec`), so a bundle built by one library
version is rejected — with a typed error, at startup — by another.

`load_warm_source` is the single entry point the CLI/fleet use: it
accepts either format (legacy manifest or bundle, detected by shape)
and fails only with `WarmupError`, a `SchemaFormatError` subclass, so
the serving layer can surface the message in the `ReadyFrame` and start
cold instead of crashing the worker.  `load_warm_manifest` in
`repro.io` delegates its per-entry validation to
`validate_schema_entries` here — one validation path for both formats.

Bundles also live *inside* an artifact store (tier ``"bundle"``,
namespace ``"warmset"``, one entry per schema fingerprint): a pool
bound to a store records every schema it compiles, and a restarted
process re-warms from that set without any manifest at all.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Optional, Union

from ..io import SchemaFormatError, schema_from_dict, schema_to_dict
from .codec import decode_envelope, encode_envelope
from .tier import ArtifactStore

#: Envelope kind / artifact tier of precompiled-schema bundles.
BUNDLE_KIND = "bundle"

#: Store namespace holding the warm set (one entry per fingerprint).
WARMSET_NAMESPACE = "warmset"


class WarmupError(SchemaFormatError):
    """Typed failure loading a warm source (manifest or bundle).

    Subclasses `SchemaFormatError` so existing manifest callers keep
    working; the serving layer catches it, records the message in the
    `ReadyFrame`, and serves cold.
    """


def validate_schema_entries(
    entries: Iterable[Any],
    origin: str,
    *,
    base_dir: Optional[Path] = None,
) -> list[dict[str, Any]]:
    """Validate warm-source entries into inline schema descriptions.

    Shared by the legacy manifest loader and the bundle loader: string
    entries are paths (resolved against `base_dir` when given), dict
    entries are inline descriptions; every description is eagerly
    parsed by `schema_from_dict` so a malformed source fails at
    startup, not at first request.
    """
    from ..io import load_schema

    descriptions: list[dict[str, Any]] = []
    for index, entry in enumerate(entries):
        if isinstance(entry, str):
            candidate = Path(entry)
            if not candidate.is_absolute() and base_dir is not None:
                candidate = base_dir / candidate
            try:
                entry = schema_to_dict(load_schema(candidate))
            except (OSError, json.JSONDecodeError) as error:
                raise WarmupError(
                    f"{origin}: entry {index} ({candidate}): {error}"
                ) from error
        if not isinstance(entry, dict):
            raise WarmupError(
                f"{origin}: entry {index} must be a schema object or "
                f"path, got {type(entry).__name__}"
            )
        try:
            schema_from_dict(entry)
        except SchemaFormatError as error:
            raise WarmupError(
                f"{origin}: entry {index}: {error}"
            ) from error
        descriptions.append(entry)
    return descriptions


def write_bundle(
    schemas: Iterable[Any], path: Union[str, Path]
) -> Path:
    """Write a bundle file from `Schema` objects or description dicts."""
    from ..service.compiled import schema_fingerprint

    entries = []
    for schema in schemas:
        description = (
            schema if isinstance(schema, dict) else schema_to_dict(schema)
        )
        parsed = schema_from_dict(description)  # validate before sealing
        entries.append(
            {
                "fingerprint": schema_fingerprint(parsed),
                "schema": description,
            }
        )
    target = Path(path)
    target.write_bytes(encode_envelope(BUNDLE_KIND, {"schemas": entries}))
    return target


def load_bundle(path: Union[str, Path]) -> list[dict[str, Any]]:
    """Load a bundle file; any mismatch is a typed `WarmupError`."""
    bundle_path = Path(path)
    try:
        blob = bundle_path.read_bytes()
    except OSError as error:
        raise WarmupError(f"bundle {bundle_path}: {error}") from error
    payload = decode_envelope(blob, BUNDLE_KIND)
    if payload is None:
        raise WarmupError(
            f"bundle {bundle_path}: not a valid bundle for this library "
            "version (format/version mismatch or corrupt file)"
        )
    entries = payload.get("schemas")
    if not isinstance(entries, list):
        raise WarmupError(
            f"bundle {bundle_path}: payload missing 'schemas' list"
        )
    return validate_schema_entries(
        (entry.get("schema") if isinstance(entry, dict) else entry
         for entry in entries),
        f"bundle {bundle_path}",
        base_dir=bundle_path.parent,
    )


def _looks_like_bundle(path: Path) -> bool:
    """Cheap shape sniff: bundles are envelope objects with our kind.

    Only the outer shape is inspected — actual validation (version,
    digest) happens in `load_bundle` so a *damaged* bundle reports a
    bundle error, not a manifest parse error.
    """
    try:
        head = json.loads(path.read_bytes().decode("utf-8"))
    except (OSError, UnicodeDecodeError, json.JSONDecodeError):
        return False
    return isinstance(head, dict) and head.get("kind") == BUNDLE_KIND


def load_warm_source(path: Union[str, Path]) -> list[dict[str, Any]]:
    """Load schema descriptions from a warm manifest *or* a bundle.

    The one loader the serving layer calls: every failure mode —
    missing file, bad JSON, wrong version, invalid schema entry — is a
    `WarmupError` carrying a one-line reason fit for a `ReadyFrame`.
    """
    from ..io import load_warm_manifest

    source = Path(path)
    if _looks_like_bundle(source):
        return load_bundle(source)
    try:
        return load_warm_manifest(source)
    except WarmupError:
        raise
    except SchemaFormatError as error:
        raise WarmupError(str(error)) from error
    except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WarmupError(f"warm manifest {source}: {error}") from error


# ----------------------------------------------------------------------
# Warm sets inside an artifact store
# ----------------------------------------------------------------------


def record_warm_schema(
    store: ArtifactStore, fingerprint: str, description: dict[str, Any]
) -> None:
    """Record one compiled schema in the store's warm set."""
    store.store(BUNDLE_KIND, WARMSET_NAMESPACE, fingerprint, description)


def load_warm_set(store: ArtifactStore) -> list[dict[str, Any]]:
    """All valid schema descriptions in the store's warm set.

    Invalid or stale entries are skipped (counted by the store as
    ``invalid``) — re-warming is an optimization, never a gate.
    """
    descriptions = []
    for key in store.kv.scan(WARMSET_NAMESPACE):
        payload = store.load(BUNDLE_KIND, WARMSET_NAMESPACE, key)
        if not isinstance(payload, dict):
            continue
        try:
            schema_from_dict(payload)
        except SchemaFormatError:
            continue
        descriptions.append(payload)
    return descriptions
