"""Cooperative execution budgets: deadlines and cancellation.

The decision core (chase rounds, rewrite expansions, match-plan
execution) is CPU-bound Python running on worker threads — nothing can
preempt it.  Interruptibility is therefore *cooperative*: a `Budget`
travels with a request from the transport (`DecideRequest.deadline_ms`)
through `Session.decide` into every loop that can run long, and those
loops poll it:

* the chase checks at every round boundary (alongside ``max_rounds`` /
  ``max_facts``);
* the rewrite engine checks per expansion step;
* the matcher ticks per backtrack batch (amortized: a counter strides
  over `TICK_STRIDE` candidate facts between clock reads, so the hot
  search loop pays one integer decrement per fact).

An exhausted budget raises `DeadlineExceeded` out of the computation.
Because the exception propagates *before* any memo-table write (plan
cache, frontier memo, decision LRU — all write their entries only after
a complete result exists), a cancelled computation can never poison a
cache with a partial artifact; the request merely fails with a typed,
retryable error.

`Overloaded` is the companion error for admission-control rejections
(per-client quotas, a saturated global gate): the work was never
started, so retrying after ``retry_after_ms`` is always safe.

Both errors carry ``retryable`` / ``retry_after_ms`` attributes that
`repro.io.ErrorFrame.from_exception` lifts onto the wire, giving
clients a machine-readable retry contract.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

#: Candidate facts examined between two clock reads in `Budget.tick`.
TICK_STRIDE = 256


class DeadlineExceeded(RuntimeError):
    """A computation ran past its budget (deadline or cancellation).

    Retryable by contract: the request may simply have landed on an
    overloaded worker or carried too tight a deadline — retrying with
    backoff (or a looser deadline) can succeed.  No partial result was
    cached (see the module docstring), so a retry recomputes honestly.
    """

    retryable = True
    retry_after_ms: Optional[float] = None

    def __init__(
        self,
        message: str = "deadline exceeded",
        *,
        deadline_ms: Optional[float] = None,
        elapsed_ms: Optional[float] = None,
        reason: str = "deadline",
    ) -> None:
        super().__init__(message)
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms
        self.reason = reason

    def as_detail(self) -> dict:
        """The structured wire form (mirrors `RewritingBudgetExceeded`)."""
        detail: dict = {"type": "DeadlineExceeded", "reason": self.reason}
        if self.deadline_ms is not None:
            detail["deadline_ms"] = self.deadline_ms
        if self.elapsed_ms is not None:
            detail["elapsed_ms"] = round(self.elapsed_ms, 3)
        return detail


class Overloaded(RuntimeError):
    """A request was shed before any work started (quota or saturation).

    Always retryable; ``retry_after_ms`` hints when capacity should
    free (clients should add jitter — see README "Operations").
    """

    retryable = True

    def __init__(
        self,
        message: str = "server overloaded",
        *,
        retry_after_ms: Optional[float] = None,
        scope: str = "server",
    ) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms
        self.scope = scope


class WorkerLost(RuntimeError):
    """A fleet worker died (or its connection dropped) with the request
    in flight.

    Retryable by contract: the dispatcher has already removed the
    worker from its ring, so a retry routes to the shard's new owner
    (or to the restarted worker once it rejoins).  The answer that was
    being computed is simply lost — never replaced with a guess — which
    preserves the fault invariant: a correct decision or a typed
    retryable error, nothing in between.
    """

    retryable = True

    def __init__(
        self,
        message: str = "worker lost with request in flight",
        *,
        worker: str = "",
        retry_after_ms: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.worker = worker
        self.retry_after_ms = retry_after_ms


class Budget:
    """A deadline plus a cancellation flag, polled cooperatively.

    ::

        budget = Budget(deadline_ms=250)
        ...
        budget.check()          # raises DeadlineExceeded when exhausted
        budget.tick()           # amortized check (hot loops)
        budget.cancel("drain")  # flip from another thread

    ``cancel`` is safe from any thread (a single attribute write); the
    polling side reads it without a lock.  A ``deadline_ms`` of None
    means no deadline — the budget is then only sensitive to `cancel`,
    which is how graceful drain interrupts unbounded requests.
    """

    __slots__ = (
        "deadline_ms",
        "_clock",
        "_started",
        "_deadline",
        "_cancelled",
        "_cancel_reason",
        "_countdown",
    )

    def __init__(
        self,
        deadline_ms: Optional[float] = None,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be positive, got {deadline_ms}"
            )
        self.deadline_ms = deadline_ms
        self._clock = clock
        self._started = clock()
        self._deadline = (
            None if deadline_ms is None else self._started + deadline_ms / 1000.0
        )
        self._cancelled = False
        self._cancel_reason = ""
        self._countdown = TICK_STRIDE

    # -- state ---------------------------------------------------------
    def cancel(self, reason: str = "cancelled") -> None:
        """Request cooperative cancellation (thread-safe, idempotent)."""
        self._cancel_reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def expired(self) -> bool:
        """True iff the deadline (if any) has passed."""
        return self._deadline is not None and self._clock() > self._deadline

    def exhausted(self) -> bool:
        """Cancelled or past deadline — without raising."""
        return self._cancelled or self.expired()

    def elapsed_ms(self) -> float:
        return (self._clock() - self._started) * 1000.0

    def remaining_ms(self) -> Optional[float]:
        """Milliseconds until the deadline (None when unbounded);
        clamped at 0 once expired."""
        if self._deadline is None:
            return None
        return max(0.0, (self._deadline - self._clock()) * 1000.0)

    # -- polling -------------------------------------------------------
    def check(self) -> None:
        """Raise `DeadlineExceeded` iff the budget is exhausted."""
        if self._cancelled:
            raise DeadlineExceeded(
                f"request cancelled ({self._cancel_reason})",
                deadline_ms=self.deadline_ms,
                elapsed_ms=self.elapsed_ms(),
                reason=self._cancel_reason or "cancelled",
            )
        if self.expired():
            raise DeadlineExceeded(
                f"deadline of {self.deadline_ms}ms exceeded after "
                f"{self.elapsed_ms():.1f}ms",
                deadline_ms=self.deadline_ms,
                elapsed_ms=self.elapsed_ms(),
                reason="deadline",
            )

    def tick(self) -> None:
        """Amortized `check`: a real clock read every `TICK_STRIDE`
        calls (cancellation is still noticed immediately — it is a flag
        read, not a clock read)."""
        if self._cancelled:
            self.check()
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = TICK_STRIDE
            self.check()

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else (
            "expired" if self.expired() else "live"
        )
        return f"Budget(deadline_ms={self.deadline_ms}, {state})"
