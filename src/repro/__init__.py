"""repro — answering queries with result-bounded data interfaces.

A complete, from-scratch implementation of the framework of

    Antoine Amarilli and Michael Benedikt,
    "When Can We Answer Queries Using Result-Bounded Data Interfaces?",
    PODS 2018 (extended arXiv version 1706.07936).

The library decides *monotone answerability*: given a relational schema
with integrity constraints and access methods — some returning at most
``k`` tuples, chosen nondeterministically — can a conjunctive query be
implemented exactly by a monotone plan over the methods?

Quickstart — open a `Session` on a schema and decide queries against
it (per-schema analysis runs once, decisions are cached)::

    from repro import Schema, Session, tgd

    schema = Schema()
    schema.add_relation("Prof", 3)
    schema.add_relation("Udirectory", 3)
    schema.add_method("pr", "Prof", inputs=[0])
    schema.add_method("ud", "Udirectory", inputs=[], result_bound=100)
    schema.add_constraint(tgd("Prof(i,n,s) -> Udirectory(i,a,p)"))

    session = Session(schema)
    response = session.decide("Udirectory(i, a, p)")
    assert response.is_yes        # Example 1.4 of the paper
    response.to_dict()            # JSON-ready wire form
    session.plan("Udirectory(i, a, p)").plan   # the static plan text

The one-shot free functions remain::

    from repro import boolean_cq, atom, decide_monotone_answerability
    q2 = boolean_cq([atom("Udirectory", "i", "a", "p")])
    assert decide_monotone_answerability(schema, q2).is_yes

To serve decisions over TCP (JSON-lines protocol, per-fingerprint
session pooling; see `repro.server` and DESIGN.md §3a)::

    python -m repro serve schema.json --port 8765

or in-process::

    from repro import SessionPool
    pool = SessionPool(schema, pool_size=4)
    pool.process(DecideRequest(query="Udirectory(i, a, p)"))

Package map (details in DESIGN.md):

* `repro.logic` / `repro.data` — queries, homomorphisms, instances;
* `repro.matching` — the compiled matching core: planned, memoized
  homomorphism evaluation shared by the chase, containment, and
  rewriting (free functions in `repro.logic.homomorphism` delegate
  here);
* `repro.constraints` — TGDs/IDs/UIDs/FDs/EGDs and their analysis;
* `repro.chase` / `repro.containment` — the chase and query containment
  (chase-based and backward-rewriting routes);
* `repro.schema` / `repro.accessibility` — access methods, result
  bounds, access selections, accessible parts;
* `repro.plans` — the plan language, execution, plan→UCQ;
* `repro.answerability` — the paper's core: AMonDet reduction, schema
  simplifications, per-class deciders, linearization, plan generation;
* `repro.service` — compiled schemas, sessions, decision caching (the
  serving layer the CLI and batch mode sit on);
* `repro.cache` — the durable persistence tier: fingerprint-addressed
  SQLite/memory key-value stores, versioned artifact envelopes
  (decisions, rewrite expansions, precompiled-schema bundles), warm
  restarts (DESIGN.md §2b);
* `repro.runtime` — request budgets: deadlines, cooperative
  cancellation, the retryable `DeadlineExceeded`/`Overloaded` errors;
* `repro.server` — the serving front end: per-fingerprint session
  pooling, the asyncio JSON-lines server (quotas, shedding, graceful
  drain), the crash-tolerant worker supervisor, the WSGI adapter;
* `repro.io` — JSON codecs: schemas, queries, requests, responses,
  error frames;
* `repro.workloads` — paper examples, generators, simulated services.
"""

from .answerability import (
    AnswerabilityResult,
    UniversalPlan,
    choice_simplification,
    decide_monotone_answerability,
    existence_check_simplification,
    fd_simplification,
    find_amondet_counterexample,
    generate_static_plan,
)
from .constraints import (
    EGD,
    TGD,
    ConstraintClass,
    FunctionalDependency,
    fd,
    inclusion_dependency,
    parse_fd,
    tgd,
)
from .cache import (
    ArtifactStore,
    CacheError,
    KVStore,
    MemoryKVStore,
    SQLiteKVStore,
    WarmupError,
    open_directory,
    write_bundle,
)
from .containment import Decision, Truth, contains, linear_contains
from .chase import ChaseOutcome, chase
from .data import Instance
from .logic import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Null,
    UnionOfConjunctiveQueries,
    Variable,
    atom,
    boolean_cq,
    cq,
    evaluate_cq,
    ground_atom,
    holds,
    parse_cq,
)
from .obs import (
    MetricsRegistry,
    RequestLogger,
    StageTimer,
    render_prometheus,
)
from .plans import Plan, execute, plan_to_ucq
from .runtime import Budget, DeadlineExceeded, Overloaded, WorkerLost
from .schema import AccessMethod, Relation, Schema
from .server import (
    CrashLoopError,
    DecideServer,
    SessionLimits,
    SessionPool,
    Supervisor,
    make_wsgi_app,
)
from .service import (
    CompiledSchema,
    DecideRequest,
    DecideResponse,
    ErrorFrame,
    PlanResponse,
    Session,
    compile_schema,
    schema_fingerprint,
)

__version__ = "1.5.0"

__all__ = [
    "ArtifactStore", "CacheError", "KVStore", "MemoryKVStore",
    "SQLiteKVStore", "WarmupError", "open_directory", "write_bundle",
    "AnswerabilityResult", "UniversalPlan", "choice_simplification",
    "decide_monotone_answerability", "existence_check_simplification",
    "fd_simplification", "find_amondet_counterexample",
    "generate_static_plan",
    "EGD", "TGD", "ConstraintClass", "FunctionalDependency", "fd",
    "inclusion_dependency", "parse_fd", "tgd",
    "Decision", "Truth", "contains", "linear_contains",
    "ChaseOutcome", "chase",
    "Instance",
    "Atom", "ConjunctiveQuery", "Constant", "Null",
    "UnionOfConjunctiveQueries", "Variable", "atom", "boolean_cq", "cq",
    "evaluate_cq", "ground_atom", "holds", "parse_cq",
    "Plan", "execute", "plan_to_ucq",
    "AccessMethod", "Relation", "Schema",
    "MetricsRegistry", "RequestLogger", "StageTimer", "render_prometheus",
    "Budget", "DeadlineExceeded", "Overloaded", "WorkerLost",
    "CrashLoopError", "DecideServer", "SessionLimits", "SessionPool",
    "Supervisor", "make_wsgi_app",
    "CompiledSchema", "DecideRequest", "DecideResponse", "ErrorFrame",
    "PlanResponse",
    "Session", "compile_schema", "schema_fingerprint",
    "__version__",
]
