"""Implication closure for unary inclusion dependencies.

Unrestricted implication of UIDs is axiomatized by reflexivity and
transitivity (Cosmadakis–Kanellakis–Vardi, JACM 1990): the UID
``R[i] ⊆ S[j]`` composes with ``S[j] ⊆ T[k]`` to give ``R[i] ⊆ T[k]``.
We represent a UID abstractly as a pair of *positions* ``(R, i) → (S, j)``
and compute the transitive closure; `uid_closure_tgds` materializes the
closure back as TGDs given the relation arities.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .tgd import TGD, id_profile, inclusion_dependency

#: A relation position: (relation name, 0-based position).
Position = tuple[str, int]


def uid_as_positions(dependency: TGD) -> tuple[Position, Position]:
    """Decompose a UID into (source position, target position)."""
    if not dependency.is_unary_inclusion_dependency():
        raise ValueError(f"not a UID: {dependency}")
    source, source_positions, target, target_positions = id_profile(dependency)
    return (source, source_positions[0]), (target, target_positions[0])


def uid_closure(
    uids: Iterable[tuple[Position, Position]],
) -> frozenset[tuple[Position, Position]]:
    """Transitive closure of a set of UIDs given as position pairs.

    Trivial (reflexive) UIDs are not included in the output.
    """
    edges: set[tuple[Position, Position]] = {
        (src, dst) for src, dst in uids if src != dst
    }
    successors: dict[Position, set[Position]] = {}
    for src, dst in edges:
        successors.setdefault(src, set()).add(dst)
    changed = True
    while changed:
        changed = False
        for src, dst in list(edges):
            for nxt in successors.get(dst, ()):
                if nxt != src and (src, nxt) not in edges:
                    edges.add((src, nxt))
                    successors.setdefault(src, set()).add(nxt)
                    changed = True
    return frozenset(edges)


def uid_closure_tgds(
    uids: Sequence[TGD], arities: dict[str, int]
) -> list[TGD]:
    """Close a set of UID TGDs under implication; returns TGDs again."""
    pairs = [uid_as_positions(uid) for uid in uids]
    closed = uid_closure(pairs)
    result: list[TGD] = []
    for (src_rel, src_pos), (dst_rel, dst_pos) in sorted(closed):
        result.append(
            inclusion_dependency(
                src_rel,
                (src_pos,),
                dst_rel,
                (dst_pos,),
                arities[src_rel],
                arities[dst_rel],
            )
        )
    return result


def implies_uid(
    uids: Iterable[tuple[Position, Position]],
    candidate: tuple[Position, Position],
) -> bool:
    """True iff the UIDs imply the candidate UID."""
    source, target = candidate
    if source == target:
        return True
    return candidate in uid_closure(uids)
