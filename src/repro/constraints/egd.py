"""Equality-generating dependencies.

An EGD is ``∀x̄ (φ(x̄) → u = v)`` with ``u, v`` variables of the body.
Functional dependencies are the special case the paper needs; `fd_to_egd`
performs the standard encoding.  The chase engine consumes both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..data.instance import Instance
from ..logic.atoms import Atom
from ..logic.homomorphism import homomorphisms
from ..logic.terms import Variable
from .base import Constraint
from .fd import FunctionalDependency


@dataclass(frozen=True)
class EGD(Constraint):
    """An equality-generating dependency ``body → left = right``."""

    body: tuple[Atom, ...]
    left: Variable
    right: Variable
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))
        body_vars = {v for a in self.body for v in a.variables()}
        if self.left not in body_vars or self.right not in body_vars:
            raise ValueError("EGD equality must use body variables")

    def body_atoms_of_relation(self, relation: str) -> tuple[int, ...]:
        """Indices of body atoms over `relation` (cached).

        The delta chase seeds its violation search per body atom from a
        changed fact; this is the lookup it drives that with.
        """
        index = self.__dict__.get("_atoms_by_relation")
        if index is None:
            index = {}
            for i, a in enumerate(self.body):
                index.setdefault(a.relation, []).append(i)
            index = {rel: tuple(ix) for rel, ix in index.items()}
            object.__setattr__(self, "_atoms_by_relation", index)
        return index.get(relation, ())

    def satisfied_by(self, instance: Instance) -> bool:
        for assignment in homomorphisms(self.body, instance):
            if assignment[self.left] != assignment[self.right]:
                return False
        return True

    def relations(self) -> tuple[str, ...]:
        return tuple(sorted({a.relation for a in self.body}))

    def __repr__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{body} -> {self.left} = {self.right}"


def fd_to_egd(dependency: FunctionalDependency, arity: int) -> EGD:
    """Encode an FD as an EGD over two copies of the relation.

    ``R(x1..xn) ∧ R(x'1..x'n) ∧ (xi = x'i for i in D)  →  xj = x'j`` is
    expressed by reusing the same variable at the determiner positions.
    """
    first = [Variable(f"x{i}") for i in range(arity)]
    second = [
        first[i] if i in dependency.determiner else Variable(f"y{i}")
        for i in range(arity)
    ]
    return EGD(
        (
            Atom(dependency.relation, tuple(first)),
            Atom(dependency.relation, tuple(second)),
        ),
        first[dependency.determined],
        second[dependency.determined],
        dependency.name,
    )


def egds_from_fds(
    fds: Iterable[FunctionalDependency], arities: dict[str, int]
) -> list[EGD]:
    """Convert FDs to EGDs, looking arities up per relation."""
    return [fd_to_egd(dep, arities[dep.relation]) for dep in fds]
