"""Base class for integrity constraints."""

from __future__ import annotations

import abc

from ..data.instance import Instance


class Constraint(abc.ABC):
    """An integrity constraint over a relational signature.

    All constraints used by the paper are *dependencies*:
    tuple-generating dependencies (TGDs, with inclusion dependencies as a
    special case) and equality-generating dependencies (EGDs, with
    functional dependencies as a special case).
    """

    @abc.abstractmethod
    def satisfied_by(self, instance: Instance) -> bool:
        """True iff the instance satisfies the constraint."""

    @abc.abstractmethod
    def relations(self) -> tuple[str, ...]:
        """Relation names mentioned by the constraint."""
