"""Tuple-generating dependencies and their syntactic subclasses.

A TGD is a sentence ``∀x̄ (φ(x̄) → ∃ȳ ψ(x̄, ȳ))`` with conjunctions of
atoms φ (body) and ψ (head).  The paper's taxonomy (§2):

* **exported variables** — body variables occurring in the head;
* **full** — no existential head variable;
* **guarded (GTGD)** — some body atom contains every body variable;
* **frontier-guarded (FGTGD)** — some body atom contains every exported
  variable;
* **linear** — a single body atom;
* **inclusion dependency (ID)** — single body atom and single head atom,
  no repeated variables in either, no constants; its **width** is the
  number of exported variables, and a width-1 ID is a **UID**.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..data.instance import Instance
from ..logic.atoms import Atom
from ..logic.homomorphism import find_homomorphism, homomorphisms
from ..logic.parser import split_rule
from ..logic.terms import Term, Variable
from .base import Constraint


@dataclass(frozen=True)
class TGD(Constraint):
    """A tuple-generating dependency ``body → ∃ȳ head``."""

    body: tuple[Atom, ...]
    head: tuple[Atom, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.body, tuple):
            object.__setattr__(self, "body", tuple(self.body))
        if not isinstance(self.head, tuple):
            object.__setattr__(self, "head", tuple(self.head))
        if not self.body or not self.head:
            raise ValueError("a TGD needs a non-empty body and head")

    # ------------------------------------------------------------------
    # Variables
    #
    # The four variable projections are pure functions of the (frozen)
    # body and head; the chase calls them once per trigger, so each is
    # computed once and cached on the instance.
    # ------------------------------------------------------------------
    def _cached(self, key: str, compute: Callable[[], tuple]) -> tuple:
        value = self.__dict__.get(key)
        if value is None:
            value = compute()
            object.__setattr__(self, key, value)
        return value

    def body_variables(self) -> tuple[Variable, ...]:
        def compute() -> tuple[Variable, ...]:
            seen: dict[Variable, None] = {}
            for a in self.body:
                for v in a.variables():
                    seen.setdefault(v, None)
            return tuple(seen)

        return self._cached("_body_vars", compute)

    def head_variables(self) -> tuple[Variable, ...]:
        def compute() -> tuple[Variable, ...]:
            seen: dict[Variable, None] = {}
            for a in self.head:
                for v in a.variables():
                    seen.setdefault(v, None)
            return tuple(seen)

        return self._cached("_head_vars", compute)

    def exported_variables(self) -> tuple[Variable, ...]:
        """Body variables that occur in the head (the frontier)."""

        def compute() -> tuple[Variable, ...]:
            head_vars = set(self.head_variables())
            return tuple(v for v in self.body_variables() if v in head_vars)

        return self._cached("_exported_vars", compute)

    def existential_variables(self) -> tuple[Variable, ...]:
        """Head variables that do not occur in the body."""

        def compute() -> tuple[Variable, ...]:
            body_vars = set(self.body_variables())
            return tuple(
                v for v in self.head_variables() if v not in body_vars
            )

        return self._cached("_existential_vars", compute)

    # ------------------------------------------------------------------
    # Syntactic classes
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Number of exported variables."""
        return len(self.exported_variables())

    def is_full(self) -> bool:
        return not self.existential_variables()

    def is_linear(self) -> bool:
        return len(self.body) == 1

    def is_guarded(self) -> bool:
        """Some body atom contains all body variables."""
        body_vars = set(self.body_variables())
        return any(body_vars <= set(a.variables()) for a in self.body)

    def is_frontier_guarded(self) -> bool:
        """Some body atom contains all exported variables."""
        exported = set(self.exported_variables())
        return any(exported <= set(a.variables()) for a in self.body)

    def is_inclusion_dependency(self) -> bool:
        """Single-atom body and head, no repetitions, no constants."""
        if len(self.body) != 1 or len(self.head) != 1:
            return False
        for a in (self.body[0], self.head[0]):
            if any(not isinstance(t, Variable) for t in a.terms):
                return False
            if len(set(a.terms)) != len(a.terms):
                return False
        return True

    def is_unary_inclusion_dependency(self) -> bool:
        return self.is_inclusion_dependency() and self.width == 1

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def triggers(
        self, instance: Instance, matcher=None
    ) -> Iterable[dict[Term, Term]]:
        """All homomorphisms of the body into the instance.

        ``matcher`` optionally supplies a `repro.matching` matcher; the
        default is the process-wide planned matcher.  (The chase
        engines search bodies through their own matcher directly — this
        method is the off-path convenience for library callers and
        `satisfied_by`.)
        """
        if matcher is not None:
            return matcher.homomorphisms(self.body, instance)
        return homomorphisms(self.body, instance)

    def is_active_trigger(
        self, trigger: Mapping[Term, Term], instance: Instance, matcher=None
    ) -> bool:
        """True iff the trigger cannot be extended to the head.

        With a `repro.matching` matcher, the head-satisfaction check is
        served from its generation-invalidated check cache when nothing
        relevant changed since the last identical check.
        """
        exported = {
            v: trigger[v] for v in self.exported_variables() if v in trigger
        }
        if matcher is not None:
            return not matcher.has(self.head, instance, seed=exported)
        return (
            find_homomorphism(self.head, instance, seed=exported) is None
        )

    def satisfied_by(self, instance: Instance) -> bool:
        return not any(
            self.is_active_trigger(trigger, instance)
            for trigger in self.triggers(instance)
        )

    def relations(self) -> tuple[str, ...]:
        rels = {a.relation for a in self.body}
        rels.update(a.relation for a in self.head)
        return tuple(sorted(rels))

    def rename_relations(self, renaming: Callable[[str], str]) -> "TGD":
        return TGD(
            tuple(a.rename_relation(renaming) for a in self.body),
            tuple(a.rename_relation(renaming) for a in self.head),
            self.name,
        )

    def __repr__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        head = ", ".join(str(a) for a in self.head)
        existentials = self.existential_variables()
        prefix = ""
        if existentials:
            prefix = "exists " + ", ".join(str(v) for v in existentials) + ". "
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{body} -> {prefix}{head}"


def tgd(rule: str, name: str = "") -> TGD:
    """Parse a TGD from text: ``"R(x,y) -> exists z. S(y,z)"``."""
    body, head = split_rule(rule)
    return TGD(body, head, name)


def inclusion_dependency(
    source: str,
    source_positions: tuple[int, ...],
    target: str,
    target_positions: tuple[int, ...],
    source_arity: int,
    target_arity: int,
    name: str = "",
) -> TGD:
    """Build the ID ``source[source_positions] ⊆ target[target_positions]``.

    Positions are 0-based; the two position tuples must have equal length
    (the width of the ID) and hold distinct positions each.
    """
    if len(source_positions) != len(target_positions):
        raise ValueError("position tuples must have the same length")
    if len(set(source_positions)) != len(source_positions):
        raise ValueError("source positions must be distinct")
    if len(set(target_positions)) != len(target_positions):
        raise ValueError("target positions must be distinct")
    body_terms = tuple(Variable(f"x{i}") for i in range(source_arity))
    head_terms: list[Variable] = [
        Variable(f"y{j}") for j in range(target_arity)
    ]
    for src, dst in zip(source_positions, target_positions):
        if not (0 <= src < source_arity and 0 <= dst < target_arity):
            raise ValueError("position out of range")
        head_terms[dst] = body_terms[src]
    return TGD(
        (Atom(source, body_terms),),
        (Atom(target, tuple(head_terms)),),
        name,
    )


def id_profile(dependency: TGD) -> tuple[str, tuple[int, ...], str, tuple[int, ...]]:
    """Decompose an ID into (source, source_positions, target, target_positions).

    Positions are 0-based and aligned: the i-th source position is exported
    to the i-th target position.
    """
    if not dependency.is_inclusion_dependency():
        raise ValueError(f"not an inclusion dependency: {dependency}")
    body_atom = dependency.body[0]
    head_atom = dependency.head[0]
    source_positions: list[int] = []
    target_positions: list[int] = []
    for i, term in enumerate(body_atom.terms):
        positions = head_atom.positions_of(term)
        if positions:
            source_positions.append(i)
            target_positions.append(positions[0])
    return (
        body_atom.relation,
        tuple(source_positions),
        head_atom.relation,
        tuple(target_positions),
    )
