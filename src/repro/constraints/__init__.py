"""Integrity constraints: TGDs, IDs, FDs, EGDs, and their analysis."""

from .analysis import (
    ClassifiedConstraints,
    ConstraintClass,
    classify,
    dependency_graph,
    has_acyclic_position_graph,
    is_weakly_acyclic,
    position_graph,
    semi_width,
)
from .base import Constraint
from .egd import EGD, egds_from_fds, fd_to_egd
from .fd import (
    FunctionalDependency,
    det_by,
    fd,
    fd_closure,
    implied_unary_fds,
    implies_fd,
    minimal_keys,
    parse_fd,
)
from .finite_closure import FiniteClosure, finite_closure
from .implication import uid_as_positions, uid_closure, uid_closure_tgds
from .tgd import TGD, id_profile, inclusion_dependency, tgd

__all__ = [
    "ClassifiedConstraints", "ConstraintClass", "classify",
    "dependency_graph", "has_acyclic_position_graph", "is_weakly_acyclic",
    "position_graph", "semi_width",
    "Constraint",
    "EGD", "egds_from_fds", "fd_to_egd",
    "FunctionalDependency", "det_by", "fd", "fd_closure",
    "implied_unary_fds", "implies_fd", "minimal_keys", "parse_fd",
    "FiniteClosure", "finite_closure",
    "uid_as_positions", "uid_closure", "uid_closure_tgds",
    "TGD", "id_profile", "inclusion_dependency", "tgd",
]
