"""Structural analysis of dependency sets.

Provides the graph-theoretic notions the paper's complexity results rely
on:

* the **basic position graph** of a set of TGDs (App E.4): nodes are
  relation positions, with an edge when an exported variable flows from a
  body position to a head position;
* **semi-width** (§5): a set of IDs has semi-width ≤ w if it splits into a
  part of width ≤ w and a part with acyclic position graph;
* **weak acyclicity** (Fagin et al.), which guarantees chase termination —
  used to pick complete chase bounds;
* a **constraint-class classifier** used by the answerability dispatcher.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import networkx as nx

from .egd import EGD
from .fd import FunctionalDependency
from .tgd import TGD

Dependency = Union[TGD, EGD, FunctionalDependency]


def position_graph(tgds: Iterable[TGD]) -> nx.DiGraph:
    """The basic position graph: exported-variable flow between positions."""
    graph = nx.DiGraph()
    for dependency in tgds:
        exported = set(dependency.exported_variables())
        for body_atom in dependency.body:
            for i, term in enumerate(body_atom.terms):
                if term in exported:
                    for head_atom in dependency.head:
                        for j, head_term in enumerate(head_atom.terms):
                            if head_term == term:
                                graph.add_edge(
                                    (body_atom.relation, i),
                                    (head_atom.relation, j),
                                )
    return graph


def dependency_graph(tgds: Iterable[TGD]) -> nx.DiGraph:
    """The weak-acyclicity graph: regular and special (starred) edges.

    Edges carry attribute ``special=True`` when an exported variable in a
    body position co-occurs with an existential variable in the head atom
    (a position where fresh nulls are created).
    """
    graph = nx.DiGraph()
    for dependency in tgds:
        exported = set(dependency.exported_variables())
        existential = set(dependency.existential_variables())
        for body_atom in dependency.body:
            for i, term in enumerate(body_atom.terms):
                if term not in exported:
                    continue
                source = (body_atom.relation, i)
                for head_atom in dependency.head:
                    for j, head_term in enumerate(head_atom.terms):
                        if head_term == term:
                            if not graph.has_edge(
                                source, (head_atom.relation, j)
                            ):
                                graph.add_edge(
                                    source,
                                    (head_atom.relation, j),
                                    special=False,
                                )
                        elif head_term in existential:
                            graph.add_edge(
                                source,
                                (head_atom.relation, j),
                                special=True,
                            )
    return graph


def is_weakly_acyclic(tgds: Iterable[TGD]) -> bool:
    """True iff no cycle of the dependency graph uses a special edge."""
    graph = dependency_graph(tgds)
    for src, dst, data in graph.edges(data=True):
        if data.get("special") and nx.has_path(graph, dst, src):
            return False
    return True


def has_acyclic_position_graph(tgds: Iterable[TGD]) -> bool:
    graph = position_graph(tgds)
    return nx.is_directed_acyclic_graph(graph)


def semi_width(tgds: Sequence[TGD]) -> int:
    """Smallest w such that the IDs split into width ≤ w + acyclic parts.

    Greedy computation: for each candidate w (from 0 up to the maximum
    width present), check whether the dependencies of width > w have an
    acyclic position graph; the smallest such w is the semi-width.
    """
    widths = sorted({dependency.width for dependency in tgds})
    for candidate in [0] + widths:
        wide = [d for d in tgds if d.width > candidate]
        if has_acyclic_position_graph(wide):
            return candidate
    return max(widths) if widths else 0


class ConstraintClass(enum.Enum):
    """Constraint fragments from Table 1 of the paper."""

    NONE = "no constraints"
    FDS = "functional dependencies"
    IDS = "inclusion dependencies"
    BOUNDED_WIDTH_IDS = "bounded-width inclusion dependencies"
    UIDS_AND_FDS = "unary inclusion dependencies and FDs"
    FULL_TGDS = "full TGDs"
    GUARDED_TGDS = "guarded TGDs"
    FRONTIER_GUARDED_TGDS = "frontier-guarded TGDs"
    EQUALITY_FREE = "equality-free first-order (arbitrary TGDs)"
    MIXED = "TGDs mixed with FDs (general)"


@dataclass(frozen=True)
class ClassifiedConstraints:
    """A dependency set split by kind, with its detected fragment."""

    tgds: tuple[TGD, ...]
    fds: tuple[FunctionalDependency, ...]
    egds: tuple[EGD, ...]
    fragment: ConstraintClass

    @property
    def all(self) -> tuple[Dependency, ...]:
        return self.tgds + self.fds + self.egds


def classify(
    constraints: Iterable[Dependency],
    *,
    width_bound: Optional[int] = 2,
) -> ClassifiedConstraints:
    """Split a dependency set by kind and detect its Table-1 fragment.

    ``width_bound`` controls when an ID set counts as "bounded-width"
    (the paper's NP case); pass None to disable that detection.
    """
    tgds: list[TGD] = []
    fds: list[FunctionalDependency] = []
    egds: list[EGD] = []
    for constraint in constraints:
        if isinstance(constraint, TGD):
            tgds.append(constraint)
        elif isinstance(constraint, FunctionalDependency):
            fds.append(constraint)
        elif isinstance(constraint, EGD):
            egds.append(constraint)
        else:
            raise TypeError(f"unsupported constraint: {constraint!r}")

    fragment = _detect_fragment(tgds, fds, egds, width_bound)
    return ClassifiedConstraints(
        tuple(tgds), tuple(fds), tuple(egds), fragment
    )


def _detect_fragment(
    tgds: Sequence[TGD],
    fds: Sequence[FunctionalDependency],
    egds: Sequence[EGD],
    width_bound: Optional[int],
) -> ConstraintClass:
    if not tgds and not fds and not egds:
        return ConstraintClass.NONE
    if egds:
        return ConstraintClass.MIXED
    if not tgds:
        return ConstraintClass.FDS
    all_ids = all(d.is_inclusion_dependency() for d in tgds)
    if not fds:
        if all_ids:
            if width_bound is not None and all(
                d.width <= width_bound for d in tgds
            ):
                return ConstraintClass.BOUNDED_WIDTH_IDS
            return ConstraintClass.IDS
        if all(d.is_full() for d in tgds):
            return ConstraintClass.FULL_TGDS
        if all(d.is_guarded() for d in tgds):
            return ConstraintClass.GUARDED_TGDS
        if all(d.is_frontier_guarded() for d in tgds):
            return ConstraintClass.FRONTIER_GUARDED_TGDS
        return ConstraintClass.EQUALITY_FREE
    if all_ids and all(d.is_unary_inclusion_dependency() for d in tgds):
        return ConstraintClass.UIDS_AND_FDS
    return ConstraintClass.MIXED
