"""Finite closure of UIDs and FDs (Cosmadakis–Kanellakis–Vardi).

Constraints mixing UIDs and FDs are *not* finitely controllable: some
dependencies hold in all finite models without holding in all models.
Cosmadakis, Kanellakis, and Vardi [24] showed that finite implication is
axiomatized by adding a **cycle rule** to the unrestricted axioms, and the
paper uses the resulting *finite closure* Σ* to reduce finite monotone
answerability to unrestricted monotone answerability (Thm 7.4 / Cor 7.3).

The cycle rule, in cardinality terms: a UID ``R[i] ⊆ S[j]`` forces
``|adom at (R,i)| ≤ |adom at (S,j)|`` and a unary FD ``i → j`` in R forces
``|adom at (R,j)| ≤ |adom at (R,i)|`` (the FD induces a surjection).  A
directed cycle of such inequalities forces all the cardinalities to be
equal in finite instances, which reverses every UID and every unary FD on
the cycle.  We build the inequality graph, detect strongly connected
components, add all reversals inside each SCC, and iterate together with
the unrestricted closure rules until fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx

from .fd import FunctionalDependency, implied_unary_fds
from .implication import Position, uid_closure
from .tgd import TGD, inclusion_dependency, id_profile


@dataclass(frozen=True)
class FiniteClosure:
    """The finite closure Σ* of a set of UIDs and FDs."""

    uids: frozenset[tuple[Position, Position]]
    fds: frozenset[FunctionalDependency]

    def uid_tgds(self, arities: dict[str, int]) -> list[TGD]:
        result = []
        for (src_rel, src_pos), (dst_rel, dst_pos) in sorted(self.uids):
            result.append(
                inclusion_dependency(
                    src_rel, (src_pos,), dst_rel, (dst_pos,),
                    arities[src_rel], arities[dst_rel],
                )
            )
        return result


def _inequality_graph(
    uids: Iterable[tuple[Position, Position]],
    unary_fds: Iterable[FunctionalDependency],
) -> nx.DiGraph:
    """Directed graph of cardinality inequalities |source| ≤ |target|."""
    graph = nx.DiGraph()
    for src, dst in uids:
        graph.add_edge(src, dst)
    for dependency in unary_fds:
        (determiner,) = dependency.determiner
        source: Position = (dependency.relation, dependency.determined)
        target: Position = (dependency.relation, determiner)
        graph.add_edge(source, target)
    return graph


def finite_closure(
    uids: Sequence[TGD],
    fds: Sequence[FunctionalDependency],
    arities: dict[str, int],
) -> FiniteClosure:
    """Compute the finite closure Σ* of UIDs + FDs.

    Returns the closed set of UIDs (as position pairs) and FDs.  The
    closure adds only *unary* FDs beyond the input FDs (the cycle rule
    reverses unary FDs); input FDs of any arity are preserved and feed the
    rule through their implied unary FDs.
    """
    uid_pairs: set[tuple[Position, Position]] = set()
    for uid in uids:
        source, source_positions, target, target_positions = id_profile(uid)
        if len(source_positions) != 1:
            raise ValueError(f"finite closure requires UIDs, got {uid}")
        uid_pairs.add(
            ((source, source_positions[0]), (target, target_positions[0]))
        )
    fd_set: set[FunctionalDependency] = set(fds)

    changed = True
    while changed:
        changed = False
        uid_pairs = set(uid_closure(uid_pairs)) | uid_pairs
        unary = {
            dependency
            for relation, arity in arities.items()
            for dependency in implied_unary_fds(
                sorted(fd_set, key=repr), relation, arity
            )
        }
        graph = _inequality_graph(uid_pairs, unary)
        for component in nx.strongly_connected_components(graph):
            if len(component) == 1:
                node = next(iter(component))
                if not graph.has_edge(node, node):
                    continue
            # Reverse every UID and unary FD inside the component.
            for src, dst in list(uid_pairs):
                if src in component and dst in component:
                    if (dst, src) not in uid_pairs:
                        uid_pairs.add((dst, src))
                        changed = True
            for dependency in list(unary):
                (determiner,) = dependency.determiner
                src: Position = (dependency.relation, dependency.determined)
                dst: Position = (dependency.relation, determiner)
                if src in component and dst in component:
                    reverse = FunctionalDependency(
                        dependency.relation,
                        frozenset([dependency.determined]),
                        determiner,
                    )
                    if reverse not in fd_set:
                        fd_set.add(reverse)
                        changed = True
    return FiniteClosure(frozenset(uid_pairs), frozenset(fd_set))
