"""Functional dependencies and FD implication.

An FD ``R: D → j`` (paper §2) asserts that whenever two R-facts agree on
all positions of ``D`` they agree on position ``j``.  Positions are
0-based in code (the text parser accepts the paper's 1-based convention).

This module also implements:

* `fd_closure` — attribute-set closure under a set of FDs (Armstrong);
* `implies_fd` — FD implication;
* `det_by` — the paper's ``DetBy(R, P)`` (§4, FD simplification): the
  positions of R determined by P, which always include P itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from ..data.instance import Instance
from .base import Constraint


@dataclass(frozen=True)
class FunctionalDependency(Constraint):
    """The FD ``determiner → determined`` on relation `relation`."""

    relation: str
    determiner: frozenset[int]
    determined: int
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.determiner, frozenset):
            object.__setattr__(self, "determiner", frozenset(self.determiner))

    def is_unary(self) -> bool:
        return len(self.determiner) == 1

    def is_trivial(self) -> bool:
        return self.determined in self.determiner

    def sorted_determiner(self) -> tuple[int, ...]:
        """The determiner positions in ascending order (cached)."""
        cached = self.__dict__.get("_sorted_determiner")
        if cached is None:
            cached = tuple(sorted(self.determiner))
            object.__setattr__(self, "_sorted_determiner", cached)
        return cached

    def project(self, fact) -> tuple[tuple, object]:
        """The (determiner-key, determined-value) projection of a fact."""
        terms = fact.terms
        return (
            tuple(terms[i] for i in self.sorted_determiner()),
            terms[self.determined],
        )

    def satisfied_by(self, instance: Instance) -> bool:
        projections: dict[tuple, object] = {}
        for fact in instance.facts_of(self.relation):
            key, value = self.project(fact)
            previous = projections.setdefault(key, value)
            if previous != value:
                return False
        return True

    def relations(self) -> tuple[str, ...]:
        return (self.relation,)

    def rename_relation(self, new_name: str) -> "FunctionalDependency":
        return FunctionalDependency(
            new_name, self.determiner, self.determined, self.name
        )

    def __repr__(self) -> str:
        lhs = ",".join(str(i + 1) for i in sorted(self.determiner))
        label = f"[{self.name}] " if self.name else ""
        return f"{label}{self.relation}: {lhs} -> {self.determined + 1}"


class FDWitnessIndex:
    """Incremental witness table for one FD over a mutating fact set.

    Maps each determiner key to the multiset of determined values seen,
    maintained on fact add/remove; keys currently holding two or more
    distinct values are kept in a dirty set so the chase can pull the
    next violation in O(1) instead of rescanning the relation.
    """

    __slots__ = ("fd", "_table", "_dirty")

    def __init__(self, dependency: FunctionalDependency) -> None:
        self.fd = dependency
        self._table: dict[tuple, dict[object, int]] = {}
        self._dirty: set[tuple] = set()

    def on_add(self, fact) -> None:
        if fact.relation != self.fd.relation:
            return
        key, value = self.fd.project(fact)
        values = self._table.setdefault(key, {})
        values[value] = values.get(value, 0) + 1
        if len(values) > 1:
            self._dirty.add(key)

    def on_remove(self, fact) -> None:
        if fact.relation != self.fd.relation:
            return
        key, value = self.fd.project(fact)
        values = self._table.get(key)
        if values is None or value not in values:
            return
        values[value] -= 1
        if values[value] == 0:
            del values[value]
        if len(values) <= 1:
            self._dirty.discard(key)
            if not values:
                del self._table[key]

    def next_violation(self):
        """Two distinct determined values sharing a key, or None."""
        while self._dirty:
            key = next(iter(self._dirty))
            values = self._table.get(key, {})
            if len(values) > 1:
                first, second, *__ = values
                return first, second
            self._dirty.discard(key)
        return None


def fd(relation: str, determiner: Iterable[int], determined: int,
       name: str = "") -> FunctionalDependency:
    """Build an FD with 0-based positions."""
    return FunctionalDependency(
        relation, frozenset(determiner), determined, name
    )


def parse_fd(text: str) -> FunctionalDependency:
    """Parse ``"R: 1, 2 -> 3"`` using the paper's 1-based positions."""
    relation_part, __, rule = text.partition(":")
    relation = relation_part.strip()
    if not relation or not rule:
        raise ValueError(f"cannot parse FD: {text!r}")
    lhs_text, arrow, rhs_text = rule.partition("->")
    if not arrow:
        raise ValueError(f"cannot parse FD (missing ->): {text!r}")
    determiner = frozenset(
        int(token) - 1 for token in lhs_text.replace(",", " ").split()
    )
    determined = int(rhs_text.strip()) - 1
    if determined < 0 or any(i < 0 for i in determiner):
        raise ValueError("FD positions are 1-based and must be positive")
    return FunctionalDependency(relation, determiner, determined)


def fds_of_relation(
    fds: Iterable[FunctionalDependency], relation: str
) -> list[FunctionalDependency]:
    return [dependency for dependency in fds if dependency.relation == relation]


def fd_closure(
    positions: Iterable[int],
    fds: Sequence[FunctionalDependency],
    relation: str,
) -> frozenset[int]:
    """Closure of a position set under the FDs of one relation."""
    relevant = fds_of_relation(fds, relation)
    closure = set(positions)
    changed = True
    while changed:
        changed = False
        for dependency in relevant:
            if (
                dependency.determined not in closure
                and dependency.determiner <= closure
            ):
                closure.add(dependency.determined)
                changed = True
    return frozenset(closure)


def implies_fd(
    fds: Sequence[FunctionalDependency],
    candidate: FunctionalDependency,
) -> bool:
    """True iff the FDs imply the candidate FD (attribute closure test)."""
    closure = fd_closure(candidate.determiner, fds, candidate.relation)
    return candidate.determined in closure


def det_by(
    fds: Sequence[FunctionalDependency],
    relation: str,
    positions: Iterable[int],
) -> frozenset[int]:
    """The paper's ``DetBy(R, P)``: positions determined by P (P included)."""
    return fd_closure(positions, fds, relation)


def implied_unary_fds(
    fds: Sequence[FunctionalDependency],
    relation: str,
    arity: int,
) -> list[FunctionalDependency]:
    """All non-trivial unary FDs on `relation` implied by `fds`.

    Used by the finite-closure cycle rule (Cosmadakis–Kanellakis–Vardi),
    which reasons over unary FDs only.
    """
    result: list[FunctionalDependency] = []
    for i in range(arity):
        closure = fd_closure([i], fds, relation)
        for j in closure:
            if j != i:
                result.append(FunctionalDependency(relation, frozenset([i]), j))
    return result


def minimal_keys(
    fds: Sequence[FunctionalDependency], relation: str, arity: int
) -> list[frozenset[int]]:
    """All minimal keys of the relation under the FDs (for analysis/tests)."""
    all_positions = frozenset(range(arity))
    keys: list[frozenset[int]] = []
    for size in range(arity + 1):
        for subset in combinations(range(arity), size):
            candidate = frozenset(subset)
            if any(key <= candidate for key in keys):
                continue
            if fd_closure(candidate, fds, relation) == all_positions:
                keys.append(candidate)
    return keys
