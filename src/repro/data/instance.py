"""Relational instances: indexed sets of ground atoms (facts).

An `Instance` is a mutable set of facts (ground `Atom`s whose terms are
constants or labeled nulls), indexed by relation and by (relation,
position, term) for fast trigger/homomorphism search.  Instances are the
substrate for everything in the library: chase states, accessible parts,
counterexample models, and the simulated web-service data.
"""

from __future__ import annotations

from collections import defaultdict
from typing import AbstractSet, Callable, Iterable, Iterator, Mapping

from ..logic.atoms import Atom
from ..logic.terms import Constant, GroundTerm, Null, Variable

Fact = Atom  # facts are ground atoms

#: Shared empty result for index misses (avoids allocating per lookup).
_EMPTY: frozenset[Fact] = frozenset()

#: Shared empty int-row view (see `int_view`).
_EMPTY_ROWS: frozenset[tuple[int, ...]] = frozenset()
_EMPTY_COLS: Mapping[tuple[int, int], AbstractSet[tuple[int, ...]]] = {}


class Instance:
    """A set of facts with incremental indexes.

    Indexes maintained:

    * ``facts_of(relation)`` — all facts of a relation;
    * ``facts_with(relation, position, term)`` — facts of a relation having
      a given term at a given (0-based) position;
    * ``facts_containing(term)`` — all facts mentioning a term anywhere
      (the occurrence index driving indexed EGD/FD merges in the chase);
    * ``active_domain()`` — every term occurring in some fact.

    The query methods return **live read-only views** of the internal
    index buckets, not snapshots: they are valid only until the next
    mutation of the instance.  Callers that mutate while iterating must
    copy first (``list(...)`` / ``frozenset(...)``).
    """

    __slots__ = (
        "_by_relation", "_by_position", "_by_term", "_domain_counts",
        "_size", "_generations", "match_cache",
        "_term_ids", "_id_terms", "_rows", "_cols",
    )

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        self._by_relation: dict[str, set[Fact]] = defaultdict(set)
        #: Positional index, built lazily on the first `facts_with` call
        #: and maintained incrementally afterwards: it serves only the
        #: object-space executors, so instances driven purely by the
        #: int executor never pay the three extra tuple-hash-set
        #: operations per added fact.
        self._by_position: (
            dict[tuple[str, int, GroundTerm], set[Fact]] | None
        ) = None
        #: Occurrence index, also lazy: it serves only the EGD/FD merge
        #: paths (`facts_containing`), so TGD-only chases — the hot
        #: closure workloads — never pay its per-term set insert.  Plan
        #: selectivity statistics read `occurrence_count` instead, which
        #: `_domain_counts` answers without the index.
        self._by_term: dict[GroundTerm, set[Fact]] | None = None
        self._domain_counts: dict[GroundTerm, int] = defaultdict(int)
        self._size = 0
        #: Per-relation mutation counters (see `generation_of`).
        self._generations: dict[str, int] = {}
        #: Opaque storage for `repro.matching`'s check cache; entries
        #: carry the generation counters they were computed under, so
        #: stale results are never served (only re-derived).
        self.match_cache: dict = {}
        #: Interning tables: each distinct ground term gets a dense int
        #: id on first appearance (append-only, so ids stay valid across
        #: discards) and every fact is mirrored as a tuple-of-int row.
        #: The int-space executor in `repro.matching.intexec` runs
        #: entirely over `_rows`/`_cols`; the object view above stays
        #: authoritative at the API boundary.
        self._term_ids: dict[GroundTerm, int] = {}
        self._id_terms: list[GroundTerm] = []
        self._rows: dict[str, set[tuple[int, ...]]] = {}
        self._cols: dict[str, dict[tuple[int, int], set[tuple[int, ...]]]] = {}
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Add a fact; return True if it was new."""
        terms = fact.terms
        relation = fact.relation
        for term in terms:
            if isinstance(term, Variable):
                raise ValueError(f"fact contains a variable: {fact}")
        bucket = self._by_relation[relation]
        if fact in bucket:
            return False
        bucket.add(fact)
        by_position = self._by_position
        by_term = self._by_term
        domain_counts = self._domain_counts
        term_ids = self._term_ids
        id_terms = self._id_terms
        row: list[int] = []
        for position, term in enumerate(terms):
            if by_position is not None:
                by_position[(relation, position, term)].add(fact)
            if by_term is not None:
                by_term[term].add(fact)
            domain_counts[term] += 1
            value_id = term_ids.get(term)
            if value_id is None:
                value_id = len(id_terms)
                term_ids[term] = value_id
                id_terms.append(term)
            row.append(value_id)
        int_row = tuple(row)
        rows = self._rows.get(relation)
        if rows is None:
            rows = self._rows[relation] = set()
            self._cols[relation] = {}
        rows.add(int_row)
        cols = self._cols[relation]
        for position, value_id in enumerate(int_row):
            key = (position, value_id)
            column = cols.get(key)
            if column is None:
                cols[key] = {int_row}
            else:
                column.add(int_row)
        self._size += 1
        generations = self._generations
        generations[relation] = generations.get(relation, 0) + 1
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Add many facts; return how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    def discard(self, fact: Fact) -> bool:
        """Remove a fact if present; return True if it was removed."""
        bucket = self._by_relation.get(fact.relation)
        if bucket is None or fact not in bucket:
            return False
        bucket.remove(fact)
        term_ids = self._term_ids
        by_position = self._by_position
        by_term = self._by_term
        for position, term in enumerate(fact.terms):
            if by_position is not None:
                key = (fact.relation, position, term)
                entry = by_position[key]
                entry.discard(fact)
                if not entry:
                    del by_position[key]
            if by_term is not None:
                by_term[term].discard(fact)
            self._domain_counts[term] -= 1
            if self._domain_counts[term] == 0:
                del self._domain_counts[term]
                if by_term is not None:
                    del by_term[term]
        # Mirror the removal in int space.  Term ids are append-only
        # (never recycled), so the row is reconstructible exactly.
        int_row = tuple(term_ids[term] for term in fact.terms)
        self._rows[fact.relation].discard(int_row)
        cols = self._cols[fact.relation]
        for position, value_id in enumerate(int_row):
            col_key = (position, value_id)
            column = cols.get(col_key)
            if column is not None:
                column.discard(int_row)
                if not column:
                    del cols[col_key]
        self._size -= 1
        generations = self._generations
        generations[fact.relation] = generations.get(fact.relation, 0) + 1
        return True

    def substitute(self, mapping: Mapping[GroundTerm, GroundTerm]) -> "Instance":
        """Return a new instance with every term rewritten via `mapping`."""
        return Instance(
            Atom(f.relation, tuple(mapping.get(t, t) for t in f.terms))
            for f in self
        )

    def rename_relations(self, renaming: Callable[[str], str]) -> "Instance":
        """Return a new instance with relation names rewritten."""
        return Instance(f.rename_relation(renaming) for f in self)

    def restrict_to_relations(self, relations: Iterable[str]) -> "Instance":
        """Return the subinstance containing only facts of given relations."""
        wanted = set(relations)
        return Instance(f for f in self if f.relation in wanted)

    # ------------------------------------------------------------------
    # Queries over the fact set
    # ------------------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        bucket = self._by_relation.get(fact.relation)
        return bucket is not None and fact in bucket

    def __iter__(self) -> Iterator[Fact]:
        for bucket in self._by_relation.values():
            yield from bucket

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return set(self) == set(other)

    def __le__(self, other: "Instance") -> bool:
        return self.is_subinstance_of(other)

    def facts(self) -> frozenset[Fact]:
        return frozenset(self)

    def relations(self) -> tuple[str, ...]:
        return tuple(
            sorted(rel for rel, bucket in self._by_relation.items() if bucket)
        )

    def facts_of(self, relation: str) -> AbstractSet[Fact]:
        """Live view of the facts of a relation (valid until mutation)."""
        bucket = self._by_relation.get(relation)
        return bucket if bucket is not None else _EMPTY

    def facts_with(
        self, relation: str, position: int, term: GroundTerm
    ) -> AbstractSet[Fact]:
        """Live view of the facts with `term` at `position` of `relation`."""
        index = self._by_position
        if index is None:
            index = self._position_index()
        bucket = index.get((relation, position, term))
        return bucket if bucket is not None else _EMPTY

    def _position_index(self) -> dict:
        """Build (or return) the lazily-maintained positional index."""
        index = self._by_position
        if index is None:
            index = defaultdict(set)
            for bucket in self._by_relation.values():
                for fact in bucket:
                    for position, term in enumerate(fact.terms):
                        index[(fact.relation, position, term)].add(fact)
            self._by_position = index
        return index

    def facts_containing(self, term: GroundTerm) -> AbstractSet[Fact]:
        """Live view of every fact mentioning `term` at any position.

        This is the occurrence index the chase uses to merge terms
        without scanning the whole instance.  Like the positional
        index it is built on first use and maintained incrementally
        afterwards; callers needing only the cardinality should use
        `occurrence_count`, which never materializes it.
        """
        index = self._by_term
        if index is None:
            index = self._term_index()
        bucket = index.get(term)
        return bucket if bucket is not None else _EMPTY

    def occurrence_count(self, term: GroundTerm) -> int:
        """How many (fact, position) slots carry `term`.

        An upper bound on ``len(facts_containing(term))`` — they differ
        only when a term repeats inside one fact — answered from the
        domain counters, so it never forces the occurrence index.  This
        is the selectivity statistic the plan compiler orders joins by.
        """
        return self._domain_counts.get(term, 0)

    def _term_index(self) -> dict:
        """Build (or return) the lazily-maintained occurrence index."""
        index = self._by_term
        if index is None:
            index = defaultdict(set)
            for bucket in self._by_relation.values():
                for fact in bucket:
                    for term in fact.terms:
                        index[term].add(fact)
            self._by_term = index
        return index

    # ------------------------------------------------------------------
    # Int-space view (interned rows; see `repro.matching.intexec`)
    # ------------------------------------------------------------------
    def term_id(self, term: GroundTerm) -> int:
        """The dense int id of a term, or -1 if it never appeared.

        -1 is a safe sentinel for executors: it can never occur inside
        a stored row, so comparisons against it simply fail.
        """
        value_id = self._term_ids.get(term)
        return -1 if value_id is None else value_id

    def term_of(self, value_id: int) -> GroundTerm:
        """The term behind a dense id (inverse of `term_id`)."""
        return self._id_terms[value_id]

    @property
    def id_terms(self) -> list[GroundTerm]:
        """The append-only id → term table (read-only by convention)."""
        return self._id_terms

    def int_view(
        self, relation: str
    ) -> tuple[
        AbstractSet[tuple[int, ...]],
        Mapping[tuple[int, int], AbstractSet[tuple[int, ...]]],
    ]:
        """Live int-space view of a relation: ``(rows, columns)``.

        ``rows`` holds one tuple-of-int row per fact; ``columns`` maps
        ``(position, value_id)`` to the rows carrying that id there.
        Like the object views, these are live buckets — valid only
        until the next mutation.
        """
        rows = self._rows.get(relation)
        if rows is None:
            return _EMPTY_ROWS, _EMPTY_COLS
        return rows, self._cols[relation]

    def generation_of(self, relation: str) -> int:
        """Mutation counter of a relation: bumped on every add/discard
        of one of its facts.  `repro.matching` caches boolean match
        results against these counters — an unchanged counter certifies
        the relation's fact set is byte-identical to when the result was
        computed."""
        return self._generations.get(relation, 0)

    def generations(self, relations: Iterable[str]) -> tuple[int, ...]:
        """The generation counters of several relations, aligned."""
        generations = self._generations
        return tuple(generations.get(r, 0) for r in relations)

    def active_domain(self) -> frozenset[GroundTerm]:
        return frozenset(self._domain_counts)

    def constants(self) -> frozenset[Constant]:
        return frozenset(
            t for t in self._domain_counts if isinstance(t, Constant)
        )

    def nulls(self) -> frozenset[Null]:
        return frozenset(t for t in self._domain_counts if isinstance(t, Null))

    def is_subinstance_of(self, other: "Instance") -> bool:
        return all(fact in other for fact in self)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def copy(self) -> "Instance":
        return Instance(self)

    def union(self, *others: "Instance") -> "Instance":
        result = self.copy()
        for other in others:
            result.add_all(other)
        return result

    def validate_indexes(self) -> None:
        """Recompute every index from scratch and compare (test hook).

        Raises ``AssertionError`` on any drift between the incremental
        indexes and the ground truth implied by the fact set.
        """
        facts = [f for bucket in self._by_relation.values() for f in bucket]
        assert self._size == len(facts), (
            f"size drift: {self._size} != {len(facts)}"
        )
        by_position: dict[tuple[str, int, GroundTerm], set[Fact]] = (
            defaultdict(set)
        )
        by_term: dict[GroundTerm, set[Fact]] = defaultdict(set)
        counts: dict[GroundTerm, int] = defaultdict(int)
        for fact in facts:
            for position, term in enumerate(fact.terms):
                by_position[(fact.relation, position, term)].add(fact)
                by_term[term].add(fact)
                counts[term] += 1
        # The positional index is lazy: validate it only when it has
        # been materialized (building it here would trivially agree).
        if self._by_position is not None:
            assert dict(self._by_position) == dict(by_position), (
                "positional index drift"
            )
        if self._by_term is not None:
            assert dict(self._by_term) == dict(by_term), (
                "occurrence index drift"
            )
        assert dict(self._domain_counts) == dict(counts), (
            "domain count drift"
        )
        # Interning tables: a bijection between interned terms and ids,
        # covering (at least) the live active domain.
        term_ids = self._term_ids
        id_terms = self._id_terms
        assert len(term_ids) == len(id_terms), "interner size drift"
        for term, value_id in term_ids.items():
            assert id_terms[value_id] is term or id_terms[value_id] == term, (
                f"interner bijection drift at id {value_id}"
            )
        for term in counts:
            assert term in term_ids, f"uninterned live term: {term}"
        # Int rows/columns: recompute from the fact set and compare
        # (empty per-relation buckets are allowed to linger, like the
        # object indexes' relation buckets).
        rows: dict[str, set[tuple[int, ...]]] = defaultdict(set)
        cols: dict[str, dict[tuple[int, int], set[tuple[int, ...]]]] = (
            defaultdict(dict)
        )
        for fact in facts:
            int_row = tuple(term_ids[term] for term in fact.terms)
            rows[fact.relation].add(int_row)
            for position, value_id in enumerate(int_row):
                cols[fact.relation].setdefault(
                    (position, value_id), set()
                ).add(int_row)
        for relation, bucket in self._rows.items():
            assert bucket == rows.get(relation, set()), (
                f"int row drift in {relation}"
            )
            assert self._cols[relation] == cols.get(relation, {}), (
                f"int column drift in {relation}"
            )
        for relation in rows:
            assert rows[relation] == self._rows.get(relation, set()), (
                f"missing int rows for {relation}"
            )

    def __repr__(self) -> str:
        shown = ", ".join(sorted(str(f) for f in self))
        return f"Instance({{{shown}}})"


def instance_of(*facts: Fact) -> Instance:
    """Build an instance from facts given positionally."""
    return Instance(facts)
