"""Relational instances: indexed sets of ground atoms (facts).

An `Instance` is a mutable set of facts (ground `Atom`s whose terms are
constants or labeled nulls), indexed by relation and by (relation,
position, term) for fast trigger/homomorphism search.  Instances are the
substrate for everything in the library: chase states, accessible parts,
counterexample models, and the simulated web-service data.
"""

from __future__ import annotations

from collections import defaultdict
from typing import AbstractSet, Callable, Iterable, Iterator, Mapping

from ..logic.atoms import Atom
from ..logic.terms import Constant, GroundTerm, Null, Variable

Fact = Atom  # facts are ground atoms

#: Shared empty result for index misses (avoids allocating per lookup).
_EMPTY: frozenset[Fact] = frozenset()


class Instance:
    """A set of facts with incremental indexes.

    Indexes maintained:

    * ``facts_of(relation)`` — all facts of a relation;
    * ``facts_with(relation, position, term)`` — facts of a relation having
      a given term at a given (0-based) position;
    * ``facts_containing(term)`` — all facts mentioning a term anywhere
      (the occurrence index driving indexed EGD/FD merges in the chase);
    * ``active_domain()`` — every term occurring in some fact.

    The query methods return **live read-only views** of the internal
    index buckets, not snapshots: they are valid only until the next
    mutation of the instance.  Callers that mutate while iterating must
    copy first (``list(...)`` / ``frozenset(...)``).
    """

    __slots__ = (
        "_by_relation", "_by_position", "_by_term", "_domain_counts",
        "_size", "_generations", "match_cache",
    )

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        self._by_relation: dict[str, set[Fact]] = defaultdict(set)
        self._by_position: dict[tuple[str, int, GroundTerm], set[Fact]] = (
            defaultdict(set)
        )
        self._by_term: dict[GroundTerm, set[Fact]] = defaultdict(set)
        self._domain_counts: dict[GroundTerm, int] = defaultdict(int)
        self._size = 0
        #: Per-relation mutation counters (see `generation_of`).
        self._generations: dict[str, int] = {}
        #: Opaque storage for `repro.matching`'s check cache; entries
        #: carry the generation counters they were computed under, so
        #: stale results are never served (only re-derived).
        self.match_cache: dict = {}
        for fact in facts:
            self.add(fact)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, fact: Fact) -> bool:
        """Add a fact; return True if it was new."""
        if any(isinstance(term, Variable) for term in fact.terms):
            raise ValueError(f"fact contains a variable: {fact}")
        bucket = self._by_relation[fact.relation]
        if fact in bucket:
            return False
        bucket.add(fact)
        for position, term in enumerate(fact.terms):
            self._by_position[(fact.relation, position, term)].add(fact)
            self._by_term[term].add(fact)
            self._domain_counts[term] += 1
        self._size += 1
        generations = self._generations
        generations[fact.relation] = generations.get(fact.relation, 0) + 1
        return True

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Add many facts; return how many were new."""
        return sum(1 for fact in facts if self.add(fact))

    def discard(self, fact: Fact) -> bool:
        """Remove a fact if present; return True if it was removed."""
        bucket = self._by_relation.get(fact.relation)
        if bucket is None or fact not in bucket:
            return False
        bucket.remove(fact)
        for position, term in enumerate(fact.terms):
            key = (fact.relation, position, term)
            entry = self._by_position[key]
            entry.discard(fact)
            if not entry:
                del self._by_position[key]
            occurrences = self._by_term[term]
            occurrences.discard(fact)
            self._domain_counts[term] -= 1
            if self._domain_counts[term] == 0:
                del self._domain_counts[term]
                del self._by_term[term]
        self._size -= 1
        generations = self._generations
        generations[fact.relation] = generations.get(fact.relation, 0) + 1
        return True

    def substitute(self, mapping: Mapping[GroundTerm, GroundTerm]) -> "Instance":
        """Return a new instance with every term rewritten via `mapping`."""
        return Instance(
            Atom(f.relation, tuple(mapping.get(t, t) for t in f.terms))
            for f in self
        )

    def rename_relations(self, renaming: Callable[[str], str]) -> "Instance":
        """Return a new instance with relation names rewritten."""
        return Instance(f.rename_relation(renaming) for f in self)

    def restrict_to_relations(self, relations: Iterable[str]) -> "Instance":
        """Return the subinstance containing only facts of given relations."""
        wanted = set(relations)
        return Instance(f for f in self if f.relation in wanted)

    # ------------------------------------------------------------------
    # Queries over the fact set
    # ------------------------------------------------------------------
    def __contains__(self, fact: Fact) -> bool:
        bucket = self._by_relation.get(fact.relation)
        return bucket is not None and fact in bucket

    def __iter__(self) -> Iterator[Fact]:
        for bucket in self._by_relation.values():
            yield from bucket

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return set(self) == set(other)

    def __le__(self, other: "Instance") -> bool:
        return self.is_subinstance_of(other)

    def facts(self) -> frozenset[Fact]:
        return frozenset(self)

    def relations(self) -> tuple[str, ...]:
        return tuple(
            sorted(rel for rel, bucket in self._by_relation.items() if bucket)
        )

    def facts_of(self, relation: str) -> AbstractSet[Fact]:
        """Live view of the facts of a relation (valid until mutation)."""
        bucket = self._by_relation.get(relation)
        return bucket if bucket is not None else _EMPTY

    def facts_with(
        self, relation: str, position: int, term: GroundTerm
    ) -> AbstractSet[Fact]:
        """Live view of the facts with `term` at `position` of `relation`."""
        bucket = self._by_position.get((relation, position, term))
        return bucket if bucket is not None else _EMPTY

    def facts_containing(self, term: GroundTerm) -> AbstractSet[Fact]:
        """Live view of every fact mentioning `term` at any position.

        This is the occurrence index the chase uses to merge terms
        without scanning the whole instance.
        """
        bucket = self._by_term.get(term)
        return bucket if bucket is not None else _EMPTY

    def generation_of(self, relation: str) -> int:
        """Mutation counter of a relation: bumped on every add/discard
        of one of its facts.  `repro.matching` caches boolean match
        results against these counters — an unchanged counter certifies
        the relation's fact set is byte-identical to when the result was
        computed."""
        return self._generations.get(relation, 0)

    def generations(self, relations: Iterable[str]) -> tuple[int, ...]:
        """The generation counters of several relations, aligned."""
        generations = self._generations
        return tuple(generations.get(r, 0) for r in relations)

    def active_domain(self) -> frozenset[GroundTerm]:
        return frozenset(self._domain_counts)

    def constants(self) -> frozenset[Constant]:
        return frozenset(
            t for t in self._domain_counts if isinstance(t, Constant)
        )

    def nulls(self) -> frozenset[Null]:
        return frozenset(t for t in self._domain_counts if isinstance(t, Null))

    def is_subinstance_of(self, other: "Instance") -> bool:
        return all(fact in other for fact in self)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def copy(self) -> "Instance":
        return Instance(self)

    def union(self, *others: "Instance") -> "Instance":
        result = self.copy()
        for other in others:
            result.add_all(other)
        return result

    def validate_indexes(self) -> None:
        """Recompute every index from scratch and compare (test hook).

        Raises ``AssertionError`` on any drift between the incremental
        indexes and the ground truth implied by the fact set.
        """
        facts = [f for bucket in self._by_relation.values() for f in bucket]
        assert self._size == len(facts), (
            f"size drift: {self._size} != {len(facts)}"
        )
        by_position: dict[tuple[str, int, GroundTerm], set[Fact]] = (
            defaultdict(set)
        )
        by_term: dict[GroundTerm, set[Fact]] = defaultdict(set)
        counts: dict[GroundTerm, int] = defaultdict(int)
        for fact in facts:
            for position, term in enumerate(fact.terms):
                by_position[(fact.relation, position, term)].add(fact)
                by_term[term].add(fact)
                counts[term] += 1
        assert dict(self._by_position) == dict(by_position), (
            "positional index drift"
        )
        assert dict(self._by_term) == dict(by_term), "occurrence index drift"
        assert dict(self._domain_counts) == dict(counts), (
            "domain count drift"
        )

    def __repr__(self) -> str:
        shown = ", ".join(sorted(str(f) for f in self))
        return f"Instance({{{shown}}})"


def instance_of(*facts: Fact) -> Instance:
    """Build an instance from facts given positionally."""
    return Instance(facts)
