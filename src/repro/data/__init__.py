"""Relational instances (indexed fact stores)."""

from .instance import Fact, Instance, instance_of

__all__ = ["Fact", "Instance", "instance_of"]
