"""Query containment under constraints."""

from .chase_containment import (
    certain_answer_boolean,
    contains,
    default_bound_for,
)
from .decision import Decision, Truth
from .rewriting import (
    RewriteEngine,
    RewritingBudgetExceeded,
    RewritingError,
    linear_contains,
    rewrite,
)

__all__ = [
    "certain_answer_boolean", "contains", "default_bound_for",
    "Decision", "Truth",
    "RewriteEngine", "RewritingBudgetExceeded", "RewritingError",
    "linear_contains", "rewrite",
]
