"""Three-valued decisions with provenance.

Chase-based procedures for query containment (and hence answerability)
are sound but only complete when the chase terminates or a class-specific
depth bound applies.  Every decision in the library therefore carries a
truth value plus an explanation of *why* it is definitive (or not).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class Truth(enum.Enum):
    """The three-valued answer of a decision procedure."""

    YES = "yes"
    NO = "no"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        if self is Truth.UNKNOWN:
            raise ValueError(
                "refusing to coerce UNKNOWN to bool; inspect .value"
            )
        return self is Truth.YES


@dataclass
class Decision:
    """A decision with provenance.

    Attributes
    ----------
    truth:
        YES / NO / UNKNOWN.
    reason:
        A human-readable explanation (e.g. "chase reached fixpoint without
        a match", "target query matched at round 3").
    certificate:
        Optional machine-readable witness: a chase proof, a containment
        witness homomorphism, a counterexample pair of instances, or a
        generated plan.
    detail:
        Free-form diagnostic data (rounds used, sizes, ...).
    """

    truth: Truth
    reason: str = ""
    certificate: Optional[Any] = None
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def is_yes(self) -> bool:
        return self.truth is Truth.YES

    @property
    def is_no(self) -> bool:
        return self.truth is Truth.NO

    @property
    def is_unknown(self) -> bool:
        return self.truth is Truth.UNKNOWN

    @staticmethod
    def yes(reason: str = "", certificate: Any = None, **detail: Any) -> "Decision":
        return Decision(Truth.YES, reason, certificate, dict(detail))

    @staticmethod
    def no(reason: str = "", certificate: Any = None, **detail: Any) -> "Decision":
        return Decision(Truth.NO, reason, certificate, dict(detail))

    @staticmethod
    def unknown(reason: str = "", **detail: Any) -> "Decision":
        return Decision(Truth.UNKNOWN, reason, None, dict(detail))

    def __repr__(self) -> str:
        return f"Decision({self.truth.value}: {self.reason})"
