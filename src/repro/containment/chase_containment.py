"""Query containment under constraints via chase proofs.

``Q ⊆Σ Q'`` holds iff every instance satisfying Q and Σ satisfies Q'
(paper §2).  The chase decides this: chase the canonical database of Q
with Σ; the containment holds iff Q' matches the result.

Soundness is unconditional: a match of Q' in any chase state certifies
the containment; a fixpoint without a match refutes it (the chase result
is a universal model).  When the chase is cut off by a bound, the answer
is UNKNOWN — callers pick bounds from class-specific termination
guarantees (see `default_bound_for`).
"""

from __future__ import annotations

import functools
from typing import Iterable, Optional, Sequence

from ..chase.engine import ChaseOutcome, Dependency, chase
from ..obs.timing import stage
from ..constraints.analysis import is_weakly_acyclic
from ..constraints.tgd import TGD
from ..data.instance import Instance
from ..logic.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..matching.matcher import default_matcher
from .decision import Decision

#: Default round cap when no termination guarantee applies.
DEFAULT_MAX_ROUNDS = 30
#: Default fact cap (guards against breadth explosion).
DEFAULT_MAX_FACTS = 200_000


def default_bound_for(
    dependencies: Sequence[Dependency], query_size: int
) -> Optional[int]:
    """A round bound that is complete when one is known, else None.

    * FDs / EGDs only: merges only, linear rounds suffice;
    * full TGDs (+ FDs): the chase terminates; a crude complete bound is
      the number of possible facts, but the restricted chase reaches its
      fixpoint on its own, so no bound is needed;
    * weakly-acyclic TGDs: same;
    * otherwise None (caller should treat BOUND_REACHED as UNKNOWN).
    """
    tgds = [d for d in dependencies if isinstance(d, TGD)]
    if not tgds:
        return None  # chase terminates by itself (merges only)
    if all(t.is_full() for t in tgds):
        return None  # terminates: no fresh nulls
    if is_weakly_acyclic(tgds):
        return None  # terminates by the weak-acyclicity theorem
    return DEFAULT_MAX_ROUNDS + query_size


def _match_stage(fn):
    """Attribute a decider's own work to the ``match`` timing stage.

    The inner `chase` pushes its own ``chase`` stage, so only the
    decision shell (canonical instance, target probes, verdict
    mapping) lands in ``match`` — stages stay exclusive.
    """

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with stage("match"):
            return fn(*args, **kwargs)

    return wrapper


@_match_stage
def contains(
    query: ConjunctiveQuery,
    target: ConjunctiveQuery | UnionOfConjunctiveQueries,
    dependencies: Iterable[Dependency],
    *,
    max_rounds: Optional[int] = None,
    max_facts: Optional[int] = DEFAULT_MAX_FACTS,
    policy: str = "restricted",
    engine: str = "delta",
    matcher=None,
    parallelism: int = 0,
) -> Decision:
    """Decide ``query ⊆_dependencies target`` by chasing.

    ``target`` may be a CQ or a UCQ.  The chase stops as soon as the
    target matches (YES), at a fixpoint (NO), or at the bound (UNKNOWN).
    ``engine`` picks the chase implementation (``"delta"``/``"naive"``,
    see `repro.chase.engine.chase`); ``matcher`` the homomorphism engine
    — pass a `CompiledSchema`'s matcher to share compiled plans across
    calls.  The per-round target probe goes through the matcher's check
    cache, so rounds that do not touch the target's relations skip the
    match search entirely.  ``parallelism`` shards the chase rounds'
    trigger collection by rule (see `repro.chase.engine.chase`).
    """
    dependencies = list(dependencies)
    canonical, __ = query.canonical_instance()
    matcher = matcher if matcher is not None else default_matcher()

    if isinstance(target, UnionOfConjunctiveQueries):
        target_holds = lambda inst: any(  # noqa: E731
            matcher.has(cq.atoms, inst) for cq in target.disjuncts
        )
        target_size = max(len(cq.atoms) for cq in target.disjuncts)
    else:
        target_holds = lambda inst: matcher.has(  # noqa: E731
            target.atoms, inst
        )
        target_size = len(target.atoms)

    if max_rounds is None:
        max_rounds = default_bound_for(dependencies, target_size)

    result = chase(
        canonical,
        dependencies,
        max_rounds=max_rounds,
        max_facts=max_facts,
        policy=policy,
        stop_when=target_holds,
        engine=engine,
        matcher=matcher,
        parallelism=parallelism,
    )
    if result.outcome is ChaseOutcome.FAILED:
        return Decision.yes(
            "premises unsatisfiable under the constraints "
            "(chase failed on a constant clash)",
            rounds=result.rounds,
        )
    if result.outcome is ChaseOutcome.EARLY_STOP:
        return Decision.yes(
            f"target query matched at chase round {result.rounds}",
            certificate=result,
            rounds=result.rounds,
        )
    if result.outcome is ChaseOutcome.FIXPOINT:
        if target_holds(result.instance):  # defensive; stop_when catches it
            return Decision.yes(
                "target query holds in the chase fixpoint",
                certificate=result,
                rounds=result.rounds,
            )
        return Decision.no(
            "chase reached a fixpoint (universal model) without a match",
            certificate=result,
            rounds=result.rounds,
        )
    return Decision.unknown(
        f"chase bound reached after {result.rounds} rounds "
        f"({len(result.instance)} facts) without a match",
        rounds=result.rounds,
        facts=len(result.instance),
    )


@_match_stage
def certain_answer_boolean(
    instance: Instance,
    query: ConjunctiveQuery,
    dependencies: Iterable[Dependency],
    *,
    max_rounds: Optional[int] = None,
    max_facts: Optional[int] = DEFAULT_MAX_FACTS,
    engine: str = "delta",
    matcher=None,
    parallelism: int = 0,
) -> Decision:
    """Certain-answer test: does `query` hold in every model of the
    dependencies containing `instance`?

    Used by the universal plan (paper §3 / our DESIGN §3): the plan
    saturates the accessible part and returns the certain answers over it.
    """
    dependencies = list(dependencies)
    matcher = matcher if matcher is not None else default_matcher()
    if max_rounds is None:
        max_rounds = default_bound_for(dependencies, len(query.atoms))
    result = chase(
        instance,
        dependencies,
        max_rounds=max_rounds,
        max_facts=max_facts,
        stop_when=lambda inst: matcher.has(query.atoms, inst),
        engine=engine,
        matcher=matcher,
        parallelism=parallelism,
    )
    if result.outcome is ChaseOutcome.FAILED:
        return Decision.yes("constraints unsatisfiable on the accessed data")
    if result.outcome is ChaseOutcome.EARLY_STOP:
        return Decision.yes(
            f"query certain after {result.rounds} chase rounds",
            certificate=result,
        )
    if result.outcome is ChaseOutcome.FIXPOINT:
        return Decision.no(
            "query absent from the universal model of the accessed data",
            certificate=result,
        )
    return Decision.unknown(
        f"chase bound reached after {result.rounds} rounds", rounds=result.rounds
    )
