"""Complete containment for linear TGDs via backward UCQ rewriting.

Inclusion dependencies — and, crucially, the linear TGDs produced by the
paper's *linearization* technique (Prop 5.5 / App E.3) — form a
*finite-unification set*: the certain-answer rewriting of a CQ under them
is a finite UCQ (Calì–Gottlob–Lembo-style PerfectRef).  This yields a
**terminating and complete** decision procedure for containment:

    Q ⊆Σ Q'   iff   CanonDB(Q) satisfies some disjunct of rewrite(Q', Σ)

which complements the chase route (complete only on terminating classes).
The deciders for IDs and bounded-width IDs use this module after
linearizing, exactly as Theorem 5.4 prescribes.

The work is organized around `RewriteEngine`, an *incremental* rewriter
over one fixed rule set:

* at construction the rules are validated, renamed apart once, and
  indexed by head relation/arity (the only rules that can resolve
  against an atom);
* every backward-resolution step is compiled per **atom pattern** (the
  atom's relation plus its variable-repetition/constant shape and which
  of its variables are shared with the rest of the query) and memoized —
  the unification work is done once per (pattern, rule) ever;
* query states are kept in **canonical form** (variables renamed by a
  deterministic scheme), and the full expansion of each canonical state
  is memoized, so rewriting query N+1 reuses every frontier state
  already explored for queries 1..N;
* emitted UCQs are deduplicated by canonical isomorphism class and
  sorted deterministically, so the output (and any cache key derived
  from it) is stable across runs and across engine instances.

The free `rewrite()` keeps its historical signature as a thin
compile-on-the-fly wrapper.  Only single-head linear TGDs are supported
(every rule emitted by our linearization has this shape); the engine
raises otherwise.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence

from ..constraints.tgd import TGD
from ..logic.atoms import Atom
from ..logic.evaluation import holds
from ..logic.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..logic.terms import Constant, Null, Term, Variable
from ..matching.matcher import default_matcher, freeze_atoms
from ..obs.timing import stage
from ..runtime import Budget
from .decision import Decision

#: Safety valve on the number of generated disjuncts.
DEFAULT_MAX_DISJUNCTS = 50_000

#: A canonical Boolean CQ body: atoms over `_q*` variables in sorted order.
State = tuple[Atom, ...]


class RewritingError(ValueError):
    """Raised on unsupported inputs (non-linear rules, non-Boolean CQs)."""


class RewritingBudgetExceeded(RewritingError):
    """The rewriting grew past ``max_disjuncts`` (Q remains undecided).

    A typed subclass so service layers can surface the budget as a
    structured error (``as_detail``) instead of a bare traceback, while
    existing ``except RewritingError`` handlers keep working.
    ``reached`` is the frontier size at which the overflow was detected
    — always ``max_disjuncts + 1``, whether the overflow is found live
    or on a memoized result, so replays of one request report the same
    error regardless of engine cache warmth.
    """

    def __init__(self, max_disjuncts: int, reached: int) -> None:
        super().__init__(
            f"rewriting exceeded {max_disjuncts} disjuncts "
            f"(reached {reached}); raise max_disjuncts to continue"
        )
        self.max_disjuncts = max_disjuncts
        self.reached = reached

    def as_detail(self) -> dict:
        """The structured wire form (`DecideResponse.error`, CLI JSON)."""
        return {
            "type": "RewritingBudgetExceeded",
            "max_disjuncts": self.max_disjuncts,
            "reached": self.reached,
        }


# ----------------------------------------------------------------------
# Unification on term equivalence classes
# ----------------------------------------------------------------------
class _Unifier:
    """Union-find over terms with constant-clash detection."""

    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.setdefault(term, term)
        if parent is term:
            return term
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, left: Term, right: Term) -> bool:
        """Merge classes; return False on a constant/null clash."""
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return True
        left_rigid = not isinstance(left_root, Variable)
        right_rigid = not isinstance(right_root, Variable)
        if left_rigid and right_rigid:
            return False
        if left_rigid:
            self._parent[right_root] = left_root
        else:
            self._parent[left_root] = right_root
        return True

    def classes(self) -> dict[Term, list[Term]]:
        groups: dict[Term, list[Term]] = {}
        for term in list(self._parent):
            groups.setdefault(self.find(term), []).append(term)
        return groups


# ----------------------------------------------------------------------
# Canonical states
# ----------------------------------------------------------------------
def _shape(a: Atom) -> tuple:
    """A variable-blind pattern of one atom (repetitions + constants)."""
    pattern = []
    first_seen: dict[Term, int] = {}
    for term in a.terms:
        if isinstance(term, Variable):
            pattern.append(("v", first_seen.setdefault(term, len(first_seen))))
        else:
            pattern.append(("c", repr(term)))
    return (a.relation, tuple(pattern))


#: Interned canonical/fresh variables (the hot loop allocates none).
#: The pools are process-global — engines on different schemas share
#: them — so growth takes a lock; reads are safe because the pools only
#: ever append.
_CANONICAL_VARS: list[Variable] = []
_FRESH_VARS: list[Variable] = []
_POOL_LOCK = threading.Lock()


def _interned(pool: list[Variable], prefix: str, index: int) -> Variable:
    if index < len(pool):
        return pool[index]
    with _POOL_LOCK:
        while len(pool) <= index:
            pool.append(Variable(f"{prefix}{len(pool)}"))
    return pool[index]


def canonical_state(atoms: Iterable[Atom]) -> State:
    """A renaming-invariant normal form of a Boolean CQ body.

    Atoms are ordered by a variable-blind shape, variables renamed to
    ``_q0, _q1, ...`` by first occurrence, duplicates dropped, and the
    result sorted deterministically.  Alpha-equivalent bodies presented
    in the same atom order map to the same state (shape-sort ties may
    distinguish some isomorphic bodies — see the isomorphism dedup at
    emission — which costs duplicates, never correctness).
    """
    ordered = sorted(dict.fromkeys(atoms), key=_shape)
    renaming: dict[Variable, int] = {}
    rebuilt = []
    for a in ordered:
        terms = []
        sort_terms = []
        for t in a.terms:
            if isinstance(t, Variable):
                index = renaming.get(t)
                if index is None:
                    index = len(renaming)
                    renaming[t] = index
                terms.append(_interned(_CANONICAL_VARS, "_q", index))
                sort_terms.append((0, index))
            else:
                terms.append(t)
                sort_terms.append((1, repr(t)))
        rebuilt.append(
            ((a.relation, tuple(sort_terms)), Atom(a.relation, tuple(terms)))
        )
    rebuilt.sort(key=lambda pair: pair[0])
    return tuple(dict.fromkeys(a for __, a in rebuilt))


def _isomorphic(left: State, right: State) -> bool:
    """Exact isomorphism of two CQ bodies (bijective variable renaming).

    Decided by the compiled matching core: an injective planned search
    of `left` against `right` frozen, bindings restricted to variable
    images (`repro.matching.Matcher.is_isomorphic`).  Kept as a free
    function for callers outside an engine; `RewriteEngine` dedups on
    its own matcher.
    """
    return default_matcher().is_isomorphic(left, right)


def _factorizations(atoms: State) -> Iterable[tuple[Atom, ...]]:
    """Unify pairs of same-relation atoms (the 'reduce' step)."""
    for i in range(len(atoms)):
        for j in range(i + 1, len(atoms)):
            if atoms[i].relation != atoms[j].relation:
                continue
            if atoms[i].arity != atoms[j].arity:
                continue
            unifier = _Unifier()
            ok = True
            for left, right in zip(atoms[i].terms, atoms[j].terms):
                if not unifier.union(left, right):
                    ok = False
                    break
            if not ok:
                continue
            substitution = {
                term: unifier.find(term) for term in list(unifier._parent)
            }
            merged = tuple(
                dict.fromkeys(a.substitute(substitution) for a in atoms)
            )
            if len(merged) < len(atoms):
                yield merged


# ----------------------------------------------------------------------
# The incremental engine
# ----------------------------------------------------------------------
#: A compiled backward-resolution step: the body relation of the rule,
#: the produced atom as tokens over the source atom's local variables
#: (("v", local_id) | ("c", constant) | ("f", fresh_id)), and the
#: equalities the head unification forces on the rest of the query.
_Step = tuple[str, tuple, tuple]


class RewriteEngine:
    """Incremental backward UCQ rewriting over one fixed linear-TGD set.

    Construction validates and indexes the rules; `rewrite` memoizes
    per-atom-pattern resolution steps, canonical-state expansions, and
    whole results, so a batch of distinct queries over the same rules
    shares every step already derived.  Thread-safe (one coarse lock —
    the memo tables are shared mutable state).

    ::

        engine = RewriteEngine(system.rules)
        ucq = engine.rewrite(query)          # complete UCQ rewriting
        engine.stats()["expansions_reused"]  # cross-query cache traffic
    """

    def __init__(
        self,
        rules: Sequence[TGD],
        *,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
        subsumption: bool = False,
        matcher=None,
    ) -> None:
        #: The compiled matcher running the isomorphism dedup (and the
        #: optional subsumption pruning).  `CompiledSchema` passes its
        #: per-fingerprint matcher so rewriting shares its plan cache.
        self._matcher = matcher if matcher is not None else default_matcher()
        # Construction-time only: memoized results are keyed by the
        # canonical start state alone, so flipping the flag on a live
        # engine would serve output computed under the other setting.
        self._subsumption = subsumption
        for rule in rules:
            if len(rule.body) != 1 or len(rule.head) != 1:
                raise RewritingError(
                    f"rewriting needs single-head linear TGDs, got {rule}"
                )
        # Rename every rule apart once, into a reserved namespace that
        # cannot collide with canonical state variables (`_q*`), pattern
        # variables (`_p*`), or application-fresh variables (`_f*`).
        self.rules: tuple[TGD, ...] = tuple(
            self._reserved(rule, index) for index, rule in enumerate(rules)
        )
        self.max_disjuncts = max_disjuncts
        #: (head relation, arity) -> indices of rules that resolve there.
        self._rules_by_head: dict[tuple[str, int], tuple[int, ...]] = {}
        for index, rule in enumerate(self.rules):
            head = rule.head[0]
            key = (head.relation, head.arity)
            self._rules_by_head[key] = self._rules_by_head.get(key, ()) + (
                index,
            )
        #: atom pattern -> compiled steps (the per-atom rewrite memo).
        self._steps: dict[tuple, tuple[_Step, ...]] = {}
        #: canonical state -> canonical successor states.
        self._expansions: dict[State, tuple[State, ...]] = {}
        #: initial canonical state -> (frontier size, emitted disjuncts).
        self._results: dict[State, tuple[int, tuple[State, ...]]] = {}
        #: optional durable tier behind the whole-result memo
        #: (`bind_store`): misses fall through to it before the BFS,
        #: complete results are written through after the memo.
        self._store = None
        self._store_namespace = ""
        self._lock = threading.RLock()
        self._counters = {
            "rewrites": 0,
            "result_hits": 0,
            "states": 0,
            "expansions_built": 0,
            "expansions_reused": 0,
            "atom_patterns_compiled": 0,
            "atom_pattern_hits": 0,
            "disjuncts_emitted": 0,
            "disjuncts_deduped": 0,
            "subsumption_checks": 0,
            "disjuncts_subsumed": 0,
            "persisted_loads": 0,
            "persisted_writes": 0,
        }

    @property
    def subsumption(self) -> bool:
        """Whether emitted disjuncts hom-implied by smaller kept ones
        are dropped.  Fixed at construction (memoized results do not
        record which setting produced them)."""
        return self._subsumption

    def bind_store(self, store, namespace: str) -> None:
        """Attach a durable artifact store behind the result memo.

        ``namespace`` must separate engines that would disagree — the
        binder (`CompiledSchema`) derives it from the schema fingerprint
        and the subsumption flag, the two construction inputs a result
        depends on.  Persistence is strictly advisory: loads that fail
        to decode are misses, writes that fail are dropped.
        """
        with self._lock:
            self._store = store
            self._store_namespace = namespace

    def _load_persisted(
        self, start: State
    ) -> Optional[tuple[int, tuple[State, ...]]]:
        from ..cache import codec

        payload = self._store.load(
            "rewrite", self._store_namespace, codec.state_key(start)
        )
        if not isinstance(payload, dict):
            return None
        frontier_size = payload.get("frontier")
        wire = payload.get("disjuncts")
        if not isinstance(frontier_size, int) or not isinstance(wire, list):
            return None
        try:
            # The stored states are the exact canonical disjuncts a
            # previous `_emit` produced, digest-protected by the
            # envelope; decoding reconstructs them verbatim (order
            # included) so replayed decisions are byte-identical.
            disjuncts = tuple(codec.decode_state(entry) for entry in wire)
        except ValueError:
            return None
        return (frontier_size, disjuncts)

    def _persist_result(
        self, start: State, frontier_size: int, disjuncts: tuple[State, ...]
    ) -> None:
        from ..cache import codec

        try:
            wire = [codec.encode_state(state) for state in disjuncts]
        except codec.UnencodableValue:
            return
        if self._store.store(
            "rewrite",
            self._store_namespace,
            codec.state_key(start),
            {"frontier": frontier_size, "disjuncts": wire},
        ):
            self._counters["persisted_writes"] += 1

    @staticmethod
    def _reserved(rule: TGD, index: int) -> TGD:
        renaming = {
            v: Variable(f"_r{index}_{v.name}")
            for v in set(rule.body_variables()) | set(rule.head_variables())
        }
        return TGD(
            tuple(a.substitute(renaming) for a in rule.body),
            tuple(a.substitute(renaming) for a in rule.head),
            rule.name,
        )

    # ------------------------------------------------------------------
    # Per-atom-pattern step compilation
    # ------------------------------------------------------------------
    def _atom_steps(
        self, a: Atom, shared: frozenset[int], local_of: dict[Variable, int]
    ) -> tuple[_Step, ...]:
        """Compiled steps for one atom occurrence.

        ``shared`` holds the local ids of the atom's variables that also
        occur elsewhere in the query; together with the atom's shape it
        fully determines applicability and effect of every rule, so the
        result is memoized across states *and* across queries.
        """
        pattern = tuple(
            ("v", local_of[t]) if isinstance(t, Variable) else ("c", t)
            for t in a.terms
        )
        key = (a.relation, pattern, shared)
        steps = self._steps.get(key)
        if steps is not None:
            self._counters["atom_pattern_hits"] += 1
            return steps
        self._counters["atom_patterns_compiled"] += 1
        variables = {
            lid: Variable(f"_p{lid}") for lid in set(local_of.values())
        }
        terms = tuple(
            variables[token[1]] if token[0] == "v" else token[1]
            for token in pattern
        )
        patom = Atom(a.relation, terms)
        compiled = []
        for rule_index in self._rules_by_head.get((a.relation, a.arity), ()):
            step = self._compile_step(patom, variables, shared, rule_index)
            if step is not None:
                compiled.append(step)
        steps = tuple(compiled)
        self._steps[key] = steps
        return steps

    def _compile_step(
        self,
        patom: Atom,
        variables: dict[int, Variable],
        shared: frozenset[int],
        rule_index: int,
    ) -> Optional[_Step]:
        """One backward-resolution step of a rule against an atom pattern.

        Returns None if the rule is not applicable (head does not unify,
        or an existential variable of the head would be exported into
        the rest of the query).
        """
        rule = self.rules[rule_index]
        head = rule.head[0]
        unifier = _Unifier()
        for query_term, head_term in zip(patom.terms, head.terms):
            if not unifier.union(query_term, head_term):
                return None

        existentials = set(rule.existential_variables())
        body_vars = set(rule.body_variables())
        local_id = {var: lid for lid, var in variables.items()}
        classes = unifier.classes()
        for members in classes.values():
            if not any(m in existentials for m in members):
                continue
            # This class witnesses an existential position of the head.
            # Every query term in it must be a variable occurring nowhere
            # else, and only at existential positions of the head.
            for member in members:
                if member in existentials:
                    continue
                if isinstance(member, (Constant, Null)):
                    return None
                if member in body_vars:
                    # Exported rule variable unified with an existential.
                    return None
                if local_id[member] in shared:
                    return None
                for i, term in enumerate(patom.terms):
                    if term == member and not (
                        isinstance(head.terms[i], Variable)
                        and head.terms[i] in existentials
                    ):
                        return None

        rule_vars = body_vars | set(rule.head_variables())

        def representative(term: Term) -> Term:
            root = unifier.find(term)
            members = classes.get(root, [root])
            for candidate in members:
                if isinstance(candidate, (Constant, Null)):
                    return candidate
            for candidate in members:
                if isinstance(candidate, Variable) and candidate not in rule_vars:
                    return candidate
            return root

        substitution = {
            term: representative(term) for term in list(unifier._parent)
        }
        new_atom = rule.body[0].substitute(substitution)

        fresh_ids: dict[Variable, int] = {}

        def token_of(term: Term) -> tuple:
            if isinstance(term, Variable):
                if term in local_id:
                    return ("v", local_id[term])
                # A rule variable surviving into the rewritten query: it
                # must be instantiated fresh at every application.
                if term not in fresh_ids:
                    fresh_ids[term] = len(fresh_ids)
                return ("f", fresh_ids[term])
            return ("c", term)

        produced = tuple(token_of(t) for t in new_atom.terms)
        merges = tuple(
            (lid, token_of(representative(var)))
            for var, lid in local_id.items()
            if representative(var) != var
        )
        return (new_atom.relation, produced, merges)

    # ------------------------------------------------------------------
    # State expansion
    # ------------------------------------------------------------------
    def _apply(self, state: State, index: int, step: _Step,
               var_of_local: dict[int, Variable]) -> State:
        relation, produced, merges = step
        substitution: dict[Term, Term] = {}
        for lid, (kind, value) in merges:
            substitution[var_of_local[lid]] = (
                value if kind == "c" else var_of_local[value]
            )
        rest = state[:index] + state[index + 1:]
        if substitution:
            rest = tuple(a.substitute(substitution) for a in rest)
        terms = []
        for kind, value in produced:
            if kind == "v":
                terms.append(var_of_local[value])
            elif kind == "c":
                terms.append(value)
            else:
                terms.append(_interned(_FRESH_VARS, "_f", value))
        return canonical_state(rest + (Atom(relation, tuple(terms)),))

    def _expand(self, state: State) -> tuple[State, ...]:
        cached = self._expansions.get(state)
        if cached is not None:
            self._counters["expansions_reused"] += 1
            return cached
        successors: list[State] = []
        for factored in _factorizations(state):
            successors.append(canonical_state(factored))
        occurrences: dict[Variable, int] = {}
        for a in state:
            for v in a.variables():
                occurrences[v] = occurrences.get(v, 0) + a.terms.count(v)
        for index, a in enumerate(state):
            local_of: dict[Variable, int] = {}
            for t in a.terms:
                if isinstance(t, Variable) and t not in local_of:
                    local_of[t] = len(local_of)
            shared = frozenset(
                lid
                for v, lid in local_of.items()
                if occurrences[v] > a.terms.count(v)
            )
            var_of_local = {lid: v for v, lid in local_of.items()}
            for step in self._atom_steps(a, shared, local_of):
                successors.append(self._apply(state, index, step, var_of_local))
        result = tuple(dict.fromkeys(successors))
        self._expansions[state] = result
        self._counters["expansions_built"] += 1
        return result

    # ------------------------------------------------------------------
    # Deterministic, isomorphism-deduplicated emission
    # ------------------------------------------------------------------
    @staticmethod
    def _emission_key(state: State) -> tuple:
        return (
            len(state),
            tuple(
                (a.relation, tuple(repr(t) for t in a.terms)) for a in state
            ),
        )

    def _emit(
        self, states: Iterable[State], budget: Optional[Budget] = None
    ) -> tuple[State, ...]:
        ordered = sorted(states, key=self._emission_key)
        buckets: dict[tuple, list[State]] = {}
        kept: list[State] = []
        matcher = self._matcher
        for state in ordered:
            if budget is not None:
                budget.tick()
            invariant = tuple(sorted(_shape(a) for a in state))
            bucket = buckets.setdefault(invariant, [])
            if any(matcher.is_isomorphic(state, other) for other in bucket):
                self._counters["disjuncts_deduped"] += 1
                continue
            bucket.append(state)
            kept.append(state)
        if self._subsumption:
            kept = self._prune_subsumed(kept, budget)
        self._counters["disjuncts_emitted"] += len(kept)
        return tuple(kept)

    def _prune_subsumed(
        self, ordered: list[State], budget: Optional[Budget] = None
    ) -> list[State]:
        """Drop disjuncts hom-implied by a smaller kept disjunct.

        A homomorphism p → CanonDB(q) means q ⊨ p, so any instance
        satisfying q already satisfies p and q adds nothing to the
        union: completeness of the rewriting is preserved.  States
        arrive smallest-first, so kept disjuncts only ever subsume
        later (larger-or-equal) ones — deterministic output.

        The pass is quadratic in the disjunct count, so two things keep
        it cheap on wide rewritings: a homomorphism preserves relations
        and constants, so a kept disjunct whose relation set (or
        constant set) is not contained in the candidate's cannot map
        into it — checked on precomputed frozensets before any search —
        and each kept disjunct's match plan is fetched once and reused
        across every candidate it is probed against.
        """
        matcher = self._matcher
        kept: list[State] = []
        kept_relations: list[frozenset] = []
        kept_constants: list[frozenset] = []
        kept_plans: list = []
        for state in ordered:
            if budget is not None:
                budget.tick()
            state_relations = frozenset(a.relation for a in state)
            state_constants = frozenset(
                t
                for a in state
                for t in a.terms
                if not isinstance(t, Variable)
            )
            frozen, __ = freeze_atoms(state)
            subsumed = False
            for index, smaller in enumerate(kept):
                if len(smaller) > len(state):
                    continue
                if not kept_relations[index] <= state_relations:
                    continue
                if not kept_constants[index] <= state_constants:
                    continue
                self._counters["subsumption_checks"] += 1
                plan = kept_plans[index]
                if plan is None:
                    plan = matcher.plan_for(smaller, frozen)
                    kept_plans[index] = plan
                if matcher.maps_into(smaller, frozen, plan=plan):
                    subsumed = True
                    break
            if subsumed:
                self._counters["disjuncts_subsumed"] += 1
                continue
            kept.append(state)
            kept_relations.append(state_relations)
            kept_constants.append(state_constants)
            kept_plans.append(None)
        return kept

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def rewrite(
        self,
        query: ConjunctiveQuery,
        *,
        max_disjuncts: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> UnionOfConjunctiveQueries:
        """Perfect UCQ rewriting of a Boolean CQ under the engine's rules.

        Every disjunct q of the result satisfies q ⊨Σ query, and the
        union is complete: for any instance I, ``chase(I, Σ) ⊨ query``
        iff I satisfies some disjunct.  Disjuncts are deduplicated by
        isomorphism class and emitted in a deterministic order.  Raises
        `RewritingBudgetExceeded` past the disjunct budget.

        ``budget`` is checked once per expansion step (each state popped
        off the BFS queue) and ticked through the emission/pruning
        passes; `repro.runtime.DeadlineExceeded` propagates *before*
        the result memo is written, so an aborted rewrite leaves only
        complete artifacts behind (``_expansions`` entries are whole
        per-state expansions — valid regardless of which rewrite built
        them).
        """
        if query.free_variables:
            raise RewritingError("rewriting is implemented for Boolean CQs")
        limit = self.max_disjuncts if max_disjuncts is None else max_disjuncts
        with stage("rewrite"), self._lock:
            self._counters["rewrites"] += 1
            start = canonical_state(query.atoms)
            cached = self._results.get(start)
            if cached is None and self._store is not None:
                cached = self._load_persisted(start)
                if cached is not None:
                    self._results[start] = cached
                    self._counters["persisted_loads"] += 1
            if cached is not None:
                frontier_size, disjuncts = cached
                self._counters["result_hits"] += 1
                if frontier_size > limit:
                    raise RewritingBudgetExceeded(limit, limit + 1)
            else:
                seen = {start}
                frontier = [start]
                queue = [start]
                while queue:
                    if budget is not None:
                        budget.check()
                    for successor in self._expand(queue.pop()):
                        if successor not in seen:
                            seen.add(successor)
                            frontier.append(successor)
                            queue.append(successor)
                            if len(frontier) > limit:
                                raise RewritingBudgetExceeded(
                                    limit, len(frontier)
                                )
                self._counters["states"] += len(frontier)
                disjuncts = self._emit(frontier, budget)
                self._results[start] = (len(frontier), disjuncts)
                if self._store is not None:
                    self._persist_result(start, len(frontier), disjuncts)
        return UnionOfConjunctiveQueries(
            tuple(
                ConjunctiveQuery(atoms, (), f"{query.name}_rw{i}")
                for i, atoms in enumerate(disjuncts)
            ),
            name=f"{query.name}_rewriting",
        )

    def stats(self) -> dict:
        """Cache-traffic counters (cross-query reuse shows up here)."""
        with self._lock:
            return {
                "rules": len(self.rules),
                "cached_results": len(self._results),
                "cached_states": len(self._expansions),
                "cached_atom_patterns": len(self._steps),
                **self._counters,
            }

    def __repr__(self) -> str:
        return (
            f"RewriteEngine({len(self.rules)} rules, "
            f"{len(self._expansions)} states cached)"
        )


# ----------------------------------------------------------------------
# Free-function wrappers (compile on the fly)
# ----------------------------------------------------------------------
def rewrite(
    query: ConjunctiveQuery,
    rules: Sequence[TGD],
    *,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    subsumption: bool = False,
) -> UnionOfConjunctiveQueries:
    """Perfect UCQ rewriting of a Boolean CQ under single-head linear TGDs.

    A thin wrapper constructing a throwaway `RewriteEngine`; callers
    rewriting many queries over one rule set should hold an engine (or a
    `repro.service.CompiledSchema`, which owns one per fingerprint) to
    share the memoized steps.  ``subsumption=True`` additionally drops
    disjuncts hom-implied by smaller ones (logically equivalent, smaller
    output).
    """
    engine = RewriteEngine(
        rules, max_disjuncts=max_disjuncts, subsumption=subsumption
    )
    return engine.rewrite(query)


def linear_contains(
    query: ConjunctiveQuery,
    target: ConjunctiveQuery,
    rules: Sequence[TGD],
    *,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    engine: Optional[RewriteEngine] = None,
) -> Decision:
    """Decide ``query ⊆Σ target`` for single-head linear TGDs Σ.

    Complete and terminating (up to the disjunct safety valve).  Pass an
    ``engine`` over the same rules to share rewriting work across calls.
    """
    try:
        if engine is None:
            engine = RewriteEngine(rules, max_disjuncts=max_disjuncts)
        rewriting = engine.rewrite(target, max_disjuncts=max_disjuncts)
    except RewritingBudgetExceeded as error:
        return Decision.unknown(str(error), error=error.as_detail())
    except RewritingError as error:
        return Decision.unknown(str(error))
    canonical, __ = query.canonical_instance()
    for disjunct in rewriting.disjuncts:
        if holds(disjunct, canonical):
            return Decision.yes(
                f"rewriting disjunct {disjunct.name} matches the canonical "
                "database",
                certificate=disjunct,
                disjuncts=len(rewriting.disjuncts),
            )
    return Decision.no(
        "no disjunct of the complete UCQ rewriting matches",
        disjuncts=len(rewriting.disjuncts),
    )
