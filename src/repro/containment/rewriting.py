"""Complete containment for linear TGDs via backward UCQ rewriting.

Inclusion dependencies — and, crucially, the linear TGDs produced by the
paper's *linearization* technique (Prop 5.5 / App E.3) — form a
*finite-unification set*: the certain-answer rewriting of a CQ under them
is a finite UCQ (Calì–Gottlob–Lembo-style PerfectRef).  This yields a
**terminating and complete** decision procedure for containment:

    Q ⊆Σ Q'   iff   CanonDB(Q) satisfies some disjunct of rewrite(Q', Σ)

which complements the chase route (complete only on terminating classes).
The deciders for IDs and bounded-width IDs use this module after
linearizing, exactly as Theorem 5.4 prescribes.

Only single-head linear TGDs are supported (every rule emitted by our
linearization has this shape); `rewrite` raises otherwise.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Sequence

from ..constraints.tgd import TGD
from ..logic.atoms import Atom
from ..logic.evaluation import holds
from ..logic.queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from ..logic.terms import Constant, Null, Term, Variable
from .decision import Decision

#: Safety valve on the number of generated disjuncts.
DEFAULT_MAX_DISJUNCTS = 50_000


class RewritingError(ValueError):
    """Raised on unsupported inputs (non-linear rules, non-Boolean CQs)."""


# ----------------------------------------------------------------------
# Unification on term equivalence classes
# ----------------------------------------------------------------------
class _Unifier:
    """Union-find over terms with constant-clash detection."""

    def __init__(self) -> None:
        self._parent: dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.setdefault(term, term)
        if parent is term:
            return term
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, left: Term, right: Term) -> bool:
        """Merge classes; return False on a constant/null clash."""
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return True
        left_rigid = not isinstance(left_root, Variable)
        right_rigid = not isinstance(right_root, Variable)
        if left_rigid and right_rigid:
            return False
        if left_rigid:
            self._parent[right_root] = left_root
        else:
            self._parent[left_root] = right_root
        return True

    def classes(self) -> dict[Term, list[Term]]:
        groups: dict[Term, list[Term]] = {}
        for term in list(self._parent):
            groups.setdefault(self.find(term), []).append(term)
        return groups


def _fresh_rule(rule: TGD, counter: itertools.count) -> TGD:
    """Rename the rule's variables apart from everything else."""
    index = next(counter)
    renaming = {
        v: Variable(f"r{index}_{v.name}")
        for v in set(rule.body_variables()) | set(rule.head_variables())
    }
    return TGD(
        tuple(a.substitute(renaming) for a in rule.body),
        tuple(a.substitute(renaming) for a in rule.head),
        rule.name,
    )


def _occurrences(atoms: Sequence[Atom], term: Term) -> int:
    return sum(a.terms.count(term) for a in atoms)


def _rewrite_atom(
    atoms: tuple[Atom, ...],
    atom_index: int,
    rule: TGD,
) -> Optional[tuple[Atom, ...]]:
    """One backward-resolution step of `rule` against one atom.

    Returns the rewritten atom tuple, or None if the rule is not
    applicable (head does not unify, or an existential variable of the
    head would be exported into the rest of the query).
    """
    atom = atoms[atom_index]
    head = rule.head[0]
    if head.relation != atom.relation or head.arity != atom.arity:
        return None

    unifier = _Unifier()
    for query_term, head_term in zip(atom.terms, head.terms):
        if not unifier.union(query_term, head_term):
            return None

    existentials = set(rule.existential_variables())
    rest = atoms[:atom_index] + atoms[atom_index + 1:]
    for root, members in unifier.classes().items():
        if not any(m in existentials for m in members):
            continue
        # This class witnesses an existential position of the head.  Every
        # query term in it must be a variable occurring nowhere else.
        for member in members:
            if member in existentials:
                continue
            if isinstance(member, (Constant, Null)):
                return None
            if isinstance(member, Variable):
                if member in set(rule.body_variables()):
                    # Exported rule variable unified with an existential.
                    return None
                if _occurrences(rest, member) > 0:
                    return None
                query_positions = [
                    i for i, t in enumerate(atom.terms) if t == member
                ]
                if any(
                    not isinstance(head.terms[i], Variable)
                    or head.terms[i] not in existentials
                    for i in query_positions
                ):
                    return None

    def representative(term: Term) -> Term:
        root = unifier.find(term)
        members = unifier.classes().get(root, [root])
        for candidate in members:
            if isinstance(candidate, (Constant, Null)):
                return candidate
        for candidate in members:
            if isinstance(candidate, Variable) and candidate not in (
                set(rule.body_variables()) | set(rule.head_variables())
            ):
                return candidate
        return root

    substitution = {
        term: representative(term)
        for term in list(unifier._parent)
    }
    new_atom = rule.body[0].substitute(substitution)
    rewritten = tuple(a.substitute(substitution) for a in rest) + (new_atom,)
    return tuple(dict.fromkeys(rewritten))


def _factorizations(atoms: tuple[Atom, ...]) -> Iterable[tuple[Atom, ...]]:
    """Unify pairs of same-relation atoms (the 'reduce' step)."""
    for i in range(len(atoms)):
        for j in range(i + 1, len(atoms)):
            if atoms[i].relation != atoms[j].relation:
                continue
            if atoms[i].arity != atoms[j].arity:
                continue
            unifier = _Unifier()
            ok = True
            for left, right in zip(atoms[i].terms, atoms[j].terms):
                if not unifier.union(left, right):
                    ok = False
                    break
            if not ok:
                continue
            substitution = {
                term: unifier.find(term) for term in list(unifier._parent)
            }
            merged = tuple(
                dict.fromkeys(a.substitute(substitution) for a in atoms)
            )
            if len(merged) < len(atoms):
                yield merged


def _canonical_key(atoms: tuple[Atom, ...]) -> tuple:
    """A renaming-invariant key for a Boolean CQ body.

    Variables are numbered in order of first occurrence after sorting the
    atoms by a variable-blind shape.  This key is invariant under variable
    renaming (it may distinguish some isomorphic queries that differ in
    atom multiset shape ties, which costs duplicates but not correctness).
    """
    def shape(a: Atom) -> tuple:
        pattern = []
        first_seen: dict[Term, int] = {}
        for term in a.terms:
            if isinstance(term, Variable):
                pattern.append(("v", first_seen.setdefault(term, len(first_seen))))
            else:
                pattern.append(("c", repr(term)))
        return (a.relation, tuple(pattern))

    ordered = sorted(atoms, key=shape)
    numbering: dict[Term, int] = {}
    key = []
    for a in ordered:
        row = [a.relation]
        for term in a.terms:
            if isinstance(term, Variable):
                row.append(("v", numbering.setdefault(term, len(numbering))))
            else:
                row.append(("c", repr(term)))
        key.append(tuple(row))
    return tuple(sorted(key))


def rewrite(
    query: ConjunctiveQuery,
    rules: Sequence[TGD],
    *,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
) -> UnionOfConjunctiveQueries:
    """Perfect UCQ rewriting of a Boolean CQ under single-head linear TGDs.

    Every disjunct q of the result satisfies q ⊨Σ query, and the union is
    complete: for any instance I, ``chase(I, Σ) ⊨ query`` iff I satisfies
    some disjunct.
    """
    if query.free_variables:
        raise RewritingError("rewriting is implemented for Boolean CQs")
    for rule in rules:
        if len(rule.body) != 1 or len(rule.head) != 1:
            raise RewritingError(
                f"rewriting needs single-head linear TGDs, got {rule}"
            )

    counter = itertools.count()
    seen: set[tuple] = set()
    disjuncts: list[tuple[Atom, ...]] = []
    queue: list[tuple[Atom, ...]] = []

    def push(atoms: tuple[Atom, ...]) -> None:
        key = _canonical_key(atoms)
        if key not in seen:
            seen.add(key)
            disjuncts.append(atoms)
            queue.append(atoms)

    push(tuple(dict.fromkeys(query.atoms)))
    while queue:
        if len(disjuncts) > max_disjuncts:
            raise RewritingError(
                f"rewriting exceeded {max_disjuncts} disjuncts"
            )
        atoms = queue.pop()
        for factored in _factorizations(atoms):
            push(factored)
        for atom_index in range(len(atoms)):
            for rule in rules:
                fresh = _fresh_rule(rule, counter)
                rewritten = _rewrite_atom(atoms, atom_index, fresh)
                if rewritten is not None:
                    push(rewritten)

    return UnionOfConjunctiveQueries(
        tuple(
            ConjunctiveQuery(atoms, (), f"{query.name}_rw{i}")
            for i, atoms in enumerate(disjuncts)
        ),
        name=f"{query.name}_rewriting",
    )


def linear_contains(
    query: ConjunctiveQuery,
    target: ConjunctiveQuery,
    rules: Sequence[TGD],
    *,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
) -> Decision:
    """Decide ``query ⊆Σ target`` for single-head linear TGDs Σ.

    Complete and terminating (up to the disjunct safety valve).
    """
    try:
        rewriting = rewrite(target, rules, max_disjuncts=max_disjuncts)
    except RewritingError as error:
        return Decision.unknown(str(error))
    canonical, __ = query.canonical_instance()
    for disjunct in rewriting.disjuncts:
        if holds(disjunct, canonical):
            return Decision.yes(
                f"rewriting disjunct {disjunct.name} matches the canonical "
                "database",
                certificate=disjunct,
                disjuncts=len(rewriting.disjuncts),
            )
    return Decision.no(
        "no disjunct of the complete UCQ rewriting matches",
        disjuncts=len(rewriting.disjuncts),
    )
