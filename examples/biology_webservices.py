"""Integrating capped biological Web services (ChEBI-flavoured).

The paper's motivation (§1): the ChEBI service limits lookup methods to
5000 entries, so a mediator answering chemistry queries must reason about
which queries survive the cap.  This example builds a simulated provider
with a capped by-formula search, then:

1. classifies a batch of user queries into answerable / not answerable
   under the caps (the existence-check principle of Theorem 4.2 at work);
2. executes an answerable query end to end against the service, counting
   calls and truncations;
3. shows that making the cap tighter or looser never changes the verdict
   (the paper: "the numbers in the result bounds never matter" for IDs).

Run:  python examples/biology_webservices.py
"""

from repro.answerability import (
    UniversalPlan,
    decide_monotone_answerability,
)
from repro.logic import Constant, atom, boolean_cq, holds
from repro.workloads import chemistry_service


def main() -> None:
    schema, service = chemistry_service(compounds=120, lookup_cap=4, seed=3)
    print("Provider schema:")
    for method in schema.methods:
        print(f"  {method!r}")

    queries = [
        (
            "some compound has formula C1H1",
            boolean_cq(
                [atom("Compound", "i", Constant("C1H1"), "m")], name="Qex"
            ),
        ),
        (
            "some C1H1 compound is heavy",
            boolean_cq(
                [
                    atom(
                        "Compound", "i", Constant("C1H1"),
                        Constant("heavy"),
                    )
                ],
                name="Qheavy",
            ),
        ),
        (
            "compound 7 is in the ontology with some parent",
            boolean_cq(
                [
                    atom("Ontology", Constant(7), "p"),
                    atom("Compound", Constant(7), "f", "m"),
                ],
                name="Qonto",
            ),
        ),
    ]

    print("\nAnswerability under the caps:")
    verdicts = {}
    for label, query in queries:
        result = decide_monotone_answerability(schema, query)
        verdicts[label] = result
        print(f"  {result.truth.value.upper():8}  {label}")

    # Why "heavy C1H1" is not answerable: the capped search may return
    # only light C1H1 compounds, and nothing else reaches the mass class.
    assert verdicts[queries[0][0]].is_yes
    assert verdicts[queries[1][0]].is_no

    print("\nExecuting the answerable existence query via the service:")
    query = queries[0][1]
    plan = UniversalPlan(schema, query)
    run = plan.run(service.data, service.selection())
    truth = holds(query, service.data)
    print(f"  service says: {bool(run.answers)}   (ground truth: {truth})")
    print(
        f"  accesses performed: {service.total_calls() or 'n/a (adapter)'}"
        f", accessed facts: {run.accessed_facts}"
    )
    assert bool(run.answers) == truth

    print("\nCap size never changes the verdict (ID constraints):")
    for cap in (1, 5, 500):
        capped_schema, __ = chemistry_service(
            compounds=10, lookup_cap=cap
        )
        for label, query in queries:
            result = decide_monotone_answerability(capped_schema, query)
            assert result.truth == verdicts[label].truth, (cap, label)
        print(f"  cap={cap:4}: verdicts unchanged")
    print("\nAll biology-service checks passed.")


if __name__ == "__main__":
    main()
