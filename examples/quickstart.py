"""Quickstart: the paper's university example, end to end.

Builds the schema of Examples 1.1–1.5 (relations Prof and Udirectory,
methods pr/ud/ud2, the referential ID τ and the FD φ), then:

1. decides monotone answerability of the paper's three queries under
   different result bounds, reproducing the paper's claims;
2. extracts a static plan for the answerable cases and prints it;
3. runs the plan and the universal plan against sample data under
   adversarial access selections, confirming they compute the query.

Run:  python examples/quickstart.py
"""

from repro.accessibility import EagerSelection, StingySelection
from repro.answerability import (
    UniversalPlan,
    decide_monotone_answerability,
    generate_static_plan,
)
from repro.logic import evaluate_cq
from repro.plans import execute
from repro.workloads import (
    query_q1,
    query_q1_boolean,
    query_q2,
    query_q3,
    query_q3_boolean,
    university_instance,
    university_schema,
)


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def main() -> None:
    banner("1. Answerability under result bounds (Examples 1.2-1.5)")
    cases = [
        (
            "Q1 (salaries), ud unbounded      [Ex 1.2: answerable]",
            university_schema(ud_bound=None),
            query_q1_boolean(),
        ),
        (
            "Q1 (salaries), ud bounded by 100 [Ex 1.3: NOT answerable]",
            university_schema(ud_bound=100),
            query_q1_boolean(),
        ),
        (
            "Q2 (anyone there?), ud bounded   [Ex 1.4: answerable]",
            university_schema(ud_bound=100),
            query_q2(),
        ),
        (
            "Q3 (address by id), FD + bound 1 [Ex 1.5: answerable]",
            university_schema(ud_bound=100, with_ud2=True, with_fd=True),
            query_q3_boolean(),
        ),
    ]
    for label, schema, query in cases:
        result = decide_monotone_answerability(schema, query)
        print(f"  {label}")
        print(f"      -> {result.truth.value.upper():8} via {result.route}")

    banner("2. A static plan extracted from the proof (Q2)")
    schema = university_schema(ud_bound=100)
    plan = generate_static_plan(schema, query_q2())
    print(plan)
    print("\n  (compare Example 2.1: T <= ud <= {}; T0 := pi_{}(T).)")

    banner("3. Executing plans against data, adversarial selections")
    instance = university_instance(employees=8)
    print(f"  Data: {len(instance)} facts, 8 employees, 4 earn 10000.")
    for selection_name, selection in (
        ("eager", EagerSelection()),
        ("stingy (adversarial)", StingySelection()),
    ):
        output = execute(plan, instance, schema, selection)
        print(f"  Q2 plan under {selection_name:22}: {set(output) or '{}'}")

    banner("4. The universal plan answers Q1 when ud is unbounded")
    schema_unbounded = university_schema(ud_bound=None)
    uplan = UniversalPlan(schema_unbounded, query_q1())
    expected = evaluate_cq(query_q1(), instance)
    run = uplan.run(instance)
    print(f"  true answers : {sorted(map(str, expected))}")
    print(f"  plan answers : {sorted(map(str, run.answers))}")
    print(
        f"  ({run.accessed_facts} facts accessed in {run.access_rounds} "
        "rounds)"
    )
    assert run.answers == expected

    banner("5. The FD mechanism (Q3): bound 1, yet the address is exact")
    schema_fd = university_schema(ud_bound=100, with_ud2=True, with_fd=True)
    uplan3 = UniversalPlan(schema_fd, query_q3(employee_id=3))
    run3 = uplan3.run(instance, StingySelection())
    print(f"  Q3(3) answers under adversarial selection: "
          f"{sorted(map(str, run3.answers))}")
    assert run3.answers == evaluate_cq(query_q3(employee_id=3), instance)

    banner("6. The chase engine knob (delta vs naive)")
    # Everything above runs on the delta (semi-naive) chase engine — the
    # default.  The naive reference engine re-enumerates all triggers
    # every round; it is kept for cross-checking (`engine="naive"`), and
    # both produce the same universal models:
    from repro.chase import chase
    from repro.constraints import tgd
    from repro.data import Instance
    from repro.logic import Atom, Constant

    start = Instance(
        Atom("E", (Constant(i), Constant(i + 1))) for i in range(20)
    )
    rules = [tgd("E(x, y) -> T(x, y)"), tgd("T(x, y), E(y, z) -> T(x, z)")]
    fast = chase(start, rules)                    # engine="delta"
    reference = chase(start, rules, engine="naive")
    print(f"  delta engine : {len(fast.instance)} facts, "
          f"{fast.stats.searches} trigger searches")
    print(f"  naive engine : {len(reference.instance)} facts, "
          f"{reference.stats.searches} trigger searches")
    assert set(fast.instance) == set(reference.instance)

    banner("7. Sessions: compiled schemas, cached decisions, wire output")
    # The service layer amortizes the per-schema analysis (detection,
    # simplification, linearization) across queries and caches
    # decisions by canonical query form — this is what the CLI's
    # `batch` mode and any future server sit on:
    from repro import Session

    session = Session(university_schema(ud_bound=100))
    first = session.decide("Udirectory(i, a, p)")      # full decision
    again = session.decide("Udirectory(x, y, z)")      # alpha-variant: hit
    print(f"  first decide : {first.decision.upper()} via {first.route} "
          f"in {first.elapsed_ms} ms")
    print(f"  repeat decide: cached={again.cached}")
    print(f"  fingerprint  : {session.fingerprint[:16]}…")
    print(f"  wire form    : {sorted(first.to_dict())}")
    responses = session.decide_many(
        ["Udirectory(i, a, p)", "Prof(i, n, 10000)"]
    )
    assert [r.decision for r in responses] == ["yes", "no"]
    assert session.compiled.stats["linearization"] == 1  # built once

    print("\nAll quickstart checks passed.")


if __name__ == "__main__":
    main()
