"""Querying a rate-limited movie API (IMDb-flavoured).

IMDb's listings stop after 10000 results and public APIs are rate
limited (paper §1, refs [27, 30, 33, 43]).  This example shows the
functional-dependency mechanism of Example 1.5 on such a provider:

* the rating class of a title is FD-determined by its id, so a bound-1
  by-id access answers rating queries *exactly*, even when the provider
  truncates adversarially;
* the year class is not determined (re-releases), so the same access
  cannot answer year queries — and the decider proves it;
* a static plan is extracted and executed within a small rate budget.

Run:  python examples/rate_limited_movie_api.py
"""

from repro.answerability import (
    decide_monotone_answerability,
    generate_static_plan,
)
from repro.logic import Constant, atom, boolean_cq, holds
from repro.plans import execute
from repro.workloads import RateLimitExceeded, movie_service


def main() -> None:
    schema, service = movie_service(titles=150, listing_cap=10, seed=5)
    print("Provider schema (adversarial truncation, cap 10):")
    for method in schema.methods:
        print(f"  {method!r}")

    title_id = 42
    rating_query = boolean_cq(
        [atom("Title", Constant(title_id), "y", Constant(title_id % 10))],
        name="Qrating",
    )
    year_query = boolean_cq(
        [atom("Title", Constant(title_id), Constant("old"), "r")],
        name="Qyear",
    )

    print("\nAnswerability:")
    rating_result = decide_monotone_answerability(schema, rating_query)
    year_result = decide_monotone_answerability(schema, year_query)
    print(f"  rating of title {title_id}: {rating_result.truth.value}"
          f"  (route: {rating_result.route})")
    print(f"  year   of title {title_id}: {year_result.truth.value}")
    assert rating_result.is_yes and year_result.is_no

    print("\nStatic plan for the rating query:")
    plan = generate_static_plan(schema, rating_query)
    for command in plan.commands:
        print(f"  {command!r};")

    print("\nExecuting against the adversarial service:")
    output = execute(plan, service.data, schema, service.selection())
    truth = holds(rating_query, service.data)
    print(f"  plan says: {bool(output)}   ground truth: {truth}")
    assert bool(output) == truth

    print("\nRate limits bound total accesses (simulated):")
    schema2, limited = movie_service(titles=150, listing_cap=10, seed=5)
    limited.rate_limit = 3
    calls = 0
    try:
        limited.call("title_by_id", 1)
        limited.call("title_by_id", 2)
        limited.call("list_titles")
        calls = 3
        limited.call("title_by_id", 3)
    except RateLimitExceeded as error:
        print(f"  after {calls} calls: {error}")
    stats = (limited.total_calls(), limited.truncated_calls())
    print(f"  calls made: {stats[0]}, truncated by the cap: {stats[1]}")
    print("\nAll movie-API checks passed.")


if __name__ == "__main__":
    main()
