"""Beyond inclusion dependencies: choice simplification and its limits.

Reproduces the two boundary examples of the paper:

* **Example 6.1** — TGD constraints where result-bounded methods are
  useful for more than existence checks: the query ∃y T(y) is answered
  by fetching *one* S-tuple (bound 1!) and testing membership in T.
  Existence-check simplification loses this; choice simplification
  (Thm 6.3) keeps it.
* **Example 8.1** — general FO constraints with counting, where even
  choice simplification fails: with bound 5 the plan works, with bound 1
  it does not, so the *value* of the bound matters.

Run:  python examples/expressive_constraints.py
"""

import itertools

from repro.accessibility import ExplicitSelection, accessible_part
from repro.answerability import (
    choice_simplification,
    decide_monotone_answerability,
    decide_with_choice_simplification,
    existence_check_simplification,
    generate_static_plan,
)
from repro.data import Instance
from repro.logic import ground_atom, holds
from repro.plans import plan_answers_query_on
from repro.workloads import (
    example_6_1_schema,
    example_8_1_story,
    query_example_6_1,
)


def example_6_1() -> None:
    print("=" * 72)
    print("Example 6.1: bound-1 access + TGD reasoning")
    print("=" * 72)
    schema = example_6_1_schema()
    query = query_example_6_1()

    result = decide_monotone_answerability(schema, query)
    print(f"  Q = ∃y T(y) is {result.truth.value} via {result.route}")
    assert result.is_yes

    print("\n  The paper's plan, extracted from the proof:")
    plan = generate_static_plan(schema, query)
    for command in plan.commands:
        print(f"    {command!r};")

    yes_instance = Instance(
        [ground_atom("S", "a"), ground_atom("T", "a"), ground_atom("T", "b")]
    )
    no_instance = Instance([ground_atom("S", "a")])
    ok = plan_answers_query_on(
        plan, query, schema, [yes_instance, no_instance, Instance()],
        per_access_limit=6, total_limit=400,
    )
    print(f"\n  exhaustive verification on sample instances: {ok}")
    assert ok

    print("\n  Existence-check simplification LOSES the query:")
    simplified = existence_check_simplification(schema).schema
    lost = decide_with_choice_simplification(simplified, query, max_rounds=12)
    print(f"    verdict on the simplified schema: {lost.truth.value}")
    assert not lost.is_yes


def example_8_1() -> None:
    print()
    print("=" * 72)
    print("Example 8.1: choice simplification fails for general FO")
    print("=" * 72)
    story = example_8_1_story()
    print("  Constraints: |P| = 7, and P∩U is empty or has ≥ 4 elements.")
    print("  Methods: mtP input-free with bound 5; mtU exact.")

    def build(overlap: int) -> Instance:
        instance = Instance()
        for i in range(7):
            instance.add(ground_atom("P", i))
        for i in range(overlap):
            instance.add(ground_atom("U", i))
        return instance

    print("\n  With bound 5 the intersect-plan is correct on all valid")
    print("  5-subsets (any 5 of 7 tuples must hit a ≥4 overlap):")
    for overlap in (0, 4, 7):
        instance = build(overlap)
        assert story.constraint_checker(instance)
        p_facts = sorted(instance.facts_of("P"), key=repr)
        u_values = {f.terms[0] for f in instance.facts_of("U")}
        outcomes = {
            any(f.terms[0] in u_values for f in subset)
            for subset in itertools.combinations(p_facts, 5)
        }
        print(f"    overlap={overlap}: plan outcomes {outcomes} "
              f"(truth: {holds(story.query, instance)})")
        assert outcomes == {holds(story.query, instance)}

    print("\n  After choice simplification (bound 1) the plan breaks:")
    schema1 = choice_simplification(story.schema).schema
    instance = build(4)
    adversarial = ExplicitSelection(
        {("mtP", ()): frozenset([ground_atom("P", 6)])}  # P(6) ∉ U
    )
    part = accessible_part(instance, schema1, adversarial).part
    p_seen = {f.terms[0] for f in part.facts_of("P")}
    u_seen = {f.terms[0] for f in part.facts_of("U")}
    print(f"    accessed P-tuples: {sorted(map(str, p_seen))}")
    print(f"    intersection with U: {p_seen & u_seen}  "
          f"(truth: {holds(story.query, instance)})")
    assert not (p_seen & u_seen) and holds(story.query, instance)
    print("    -> the bound's value matters: no choice simplification.")


def main() -> None:
    example_6_1()
    example_8_1()
    print("\nAll expressive-constraints checks passed.")


if __name__ == "__main__":
    main()
